(* SAT encoding of the layout synthesis problem (paper §III-A).

   Builds either the succinct OLSQ2 formulation or the original OLSQ
   formulation (with its redundant space variables) over a fixed horizon of
   [t_max] time steps.  Objective bounds are attached to selector literals
   so the optimizer can tighten/relax them through solver assumptions --
   the incremental-solving strategy of §III-B.

   Variables (§III-A-1):
   - mapping pi.(q).(t): physical qubit holding program qubit q at time t;
   - time  t_g: execution time step of gate g;
   - sigma.(e).(t): a SWAP on edge e finishes (occupies its last step) at
     time t.  Following the paper's constraint ranges, finish times before
     S_D are disallowed (a SWAP layer before any gate can be folded into
     the free initial mapping), as is the final step (its effect would be
     invisible).

   Constraint groups:
   (1) mapping injectivity  - pairwise disequalities or the inverse-
       function channel (the EUF trick of Improvement 3);
   (2) gate dependencies    - strict time ordering along the DAG;
   (3) two-qubit adjacency  - Eq. 1;
   (4) mapping transfer     - stay/swap transition between t and t+1;
   (5) SWAP overlap         - Eq. 2 (1q gates), Eq. 3 (2q gates), plus
       SWAP/SWAP exclusion on edges sharing an endpoint. *)

module F = Olsq2_encode.Formula
module Ctx = Olsq2_encode.Ctx
module Cardinality = Olsq2_encode.Cardinality
module Pb = Olsq2_encode.Pb
module Lit = Olsq2_sat.Lit
module Solver = Olsq2_sat.Solver
module Circuit = Olsq2_circuit.Circuit
module Gate = Olsq2_circuit.Gate
module Dag = Olsq2_circuit.Dag
module Coupling = Olsq2_device.Coupling
module Symmetry = Olsq2_device.Symmetry
module Obs = Olsq2_obs.Obs
module Simplify = Olsq2_simplify.Simplify
module Share = Olsq2_parallel.Share

type counter =
  | Card of Cardinality.outputs
  | Inc_card of Cardinality.Inc.t (* Seq_counter: one widenable chain *)
  | Adder_net of Pb.t

type counter_kind = Plain | Weighted

type t = {
  instance : Instance.t;
  config : Config.t;
  ctx : Ctx.t;
  t_max : int;
  pi : Ivar.t array array; (* pi.(q).(t) *)
  time : Ivar.t array; (* time.(g) *)
  sigma : Lit.t option array array; (* sigma.(e).(t); None = disallowed *)
  depth_selectors : (int, Lit.t) Hashtbl.t;
  (* SWAP-count counters, widest first: a narrow sequential counter may
     later be superseded by a wider one when the optimizer needs larger
     bounds (heuristic warm starts can guess too low) *)
  mutable counters : (int * counter) list; (* (max expressible bound, counter) *)
  mutable counter_kind : counter_kind option;
  mutable simplify_report : Simplify.report option; (* preprocessing, when on *)
}

let solver t = Ctx.solver t.ctx

(* Flattened list of existing sigma literals with their (edge, time). *)
let sigma_lits t =
  let out = ref [] in
  Array.iteri
    (fun e row -> Array.iteri (fun tm l -> match l with Some l -> out := (e, tm, l) :: !out | None -> ()) row)
    t.sigma;
  List.rev !out

(* ---- constraint groups ---- *)

let assert_injectivity enc =
  let inst = enc.instance in
  let nq = Instance.num_qubits inst in
  let np = Instance.num_physical inst in
  match enc.config.Config.injectivity with
  | Config.Pairwise ->
    for tm = 0 to enc.t_max - 1 do
      for q = 0 to nq - 1 do
        for q' = q + 1 to nq - 1 do
          Ctx.assert_formula enc.ctx (Ivar.neq enc.pi.(q).(tm) enc.pi.(q').(tm))
        done
      done
    done
  | Config.Inverse ->
    (* pi_inv(p, t) = q whenever pi(q, t) = p: a left inverse forces
       injectivity with |Q| * |P| short channel constraints per step
       instead of |Q|^2 * |P| pairwise ones. *)
    let pi_inv =
      Array.init np (fun _ ->
          Array.init enc.t_max (fun _ -> Ivar.fresh enc.ctx enc.config.Config.var_encoding nq))
    in
    for tm = 0 to enc.t_max - 1 do
      for q = 0 to nq - 1 do
        for p = 0 to np - 1 do
          Ctx.assert_formula enc.ctx
            (F.imply (Ivar.eq_const enc.pi.(q).(tm) p) (Ivar.eq_const pi_inv.(p).(tm) q))
        done
      done
    done

let assert_dependencies enc =
  let dag = enc.instance.Instance.dag in
  List.iter
    (fun (g, g') -> Ctx.assert_formula enc.ctx (Ivar.lt enc.time.(g) enc.time.(g')))
    (Dag.dependencies dag)

(* Eq. 1: a two-qubit gate executes on some coupling edge ([allowed]
   filters by edge id when symmetry breaking restricts the choice). *)
let adjacency_formula ?allowed enc q q' tm =
  let device = enc.instance.Instance.device in
  let keep = match allowed with None -> fun _ -> true | Some f -> f in
  let disjuncts = ref [] in
  Array.iteri
    (fun e (p, p') ->
      if keep e then
        disjuncts :=
          F.and_ [ Ivar.eq_const enc.pi.(q).(tm) p; Ivar.eq_const enc.pi.(q').(tm) p' ]
          :: F.and_ [ Ivar.eq_const enc.pi.(q).(tm) p'; Ivar.eq_const enc.pi.(q').(tm) p ]
          :: !disjuncts)
    device.Coupling.edges;
  F.or_ !disjuncts

let assert_adjacency_olsq2 enc =
  let circuit = enc.instance.Instance.circuit in
  (* Symmetry breaking (config.symmetry): any device automorphism maps
     solutions to solutions with the same depth and SWAP count, so the
     first two-qubit gate may be pinned to one representative edge per
     automorphism orbit.  Unsound for weighted-SWAP objectives — those
     callers must pass symmetry = false. *)
  let pivot =
    if not enc.config.Config.symmetry then None
    else
      Array.fold_left
        (fun acc (g : Gate.t) ->
          match acc with
          | Some _ -> acc
          | None -> if Gate.is_two_qubit g then Some g.Gate.id else None)
        None circuit.Circuit.gates
  in
  let pivot_allowed =
    match pivot with
    | None -> None
    | Some _ ->
      let orbits = Symmetry.edge_orbits enc.instance.Instance.device in
      Some (fun e -> orbits.(e) = e)
  in
  Array.iter
    (fun (g : Gate.t) ->
      if Gate.is_two_qubit g then begin
        let q, q' = Gate.pair g in
        let allowed = if pivot = Some g.Gate.id then pivot_allowed else None in
        for tm = 0 to enc.t_max - 1 do
          Ctx.assert_formula enc.ctx
            (F.imply
               (Ivar.eq_const enc.time.(g.Gate.id) tm)
               (adjacency_formula ?allowed enc q q' tm))
        done
      end)
    circuit.Circuit.gates

(* Mapping transfer (constraint 4 + SWAP transformation): between steps t
   and t+1, a program qubit follows the SWAP finishing at t on its current
   physical qubit, or stays put if there is none. *)
let assert_transitions enc =
  let inst = enc.instance in
  let device = inst.Instance.device in
  let nq = Instance.num_qubits inst in
  let np = Instance.num_physical inst in
  for tm = 0 to enc.t_max - 2 do
    for q = 0 to nq - 1 do
      for p = 0 to np - 1 do
        let here = Ivar.eq_const enc.pi.(q).(tm) p in
        let incident = Coupling.incident_edges device p in
        let no_swap =
          F.and_
            (List.filter_map
               (fun e -> Option.map (fun l -> F.Not (F.Atom l)) enc.sigma.(e).(tm))
               incident)
        in
        Ctx.assert_formula enc.ctx
          (F.imply (F.and_ [ here; no_swap ]) (Ivar.eq_const enc.pi.(q).(tm + 1) p));
        List.iter
          (fun e ->
            match enc.sigma.(e).(tm) with
            | None -> ()
            | Some l ->
              let a, b = Coupling.edge device e in
              let other = if a = p then b else a in
              Ctx.assert_formula enc.ctx
                (F.imply (F.and_ [ F.Atom l; here ]) (Ivar.eq_const enc.pi.(q).(tm + 1) other)))
          incident
      done
    done
  done

(* overlap(t, q, e) of Eq. 2/3: program qubit q sits on an endpoint of e
   at time t. *)
let overlap enc q e tm =
  let p, p' = Coupling.edge enc.instance.Instance.device e in
  F.or_ [ Ivar.eq_const enc.pi.(q).(tm) p; Ivar.eq_const enc.pi.(q).(tm) p' ]

(* Eq. 2 and Eq. 3 for the OLSQ2 formulation: a SWAP finishing at t
   occupies (t - S_D, t]; no gate scheduled in that window may touch the
   SWAP's edge. *)
let assert_swap_gate_overlap_olsq2 enc =
  let inst = enc.instance in
  let circuit = inst.Instance.circuit in
  let sd = inst.Instance.swap_duration in
  List.iter
    (fun (e, tm, sl) ->
      let t_from = max 0 (tm - sd + 1) in
      for t' = t_from to tm do
        Array.iter
          (fun (g : Gate.t) ->
            let time_is = Ivar.eq_const enc.time.(g.Gate.id) t' in
            let touches =
              match g.Gate.operands with
              | Gate.One q -> overlap enc q e tm
              | Gate.Two (q, q') -> F.or_ [ overlap enc q e tm; overlap enc q' e tm ]
            in
            Ctx.assert_formula enc.ctx
              (F.imply (F.and_ [ time_is; touches ]) (F.Not (F.Atom sl))))
          circuit.Circuit.gates
      done)
    (sigma_lits enc)

(* SWAP/SWAP exclusion: two SWAPs sharing a physical qubit must be at
   least S_D steps apart. *)
let assert_swap_swap_overlap enc =
  let device = enc.instance.Instance.device in
  let sd = enc.instance.Instance.swap_duration in
  let share e e' =
    let a, b = Coupling.edge device e and c, d = Coupling.edge device e' in
    a = c || a = d || b = c || b = d
  in
  let sigmas = sigma_lits enc in
  List.iter
    (fun (e, tm, l) ->
      List.iter
        (fun (e', tm', l') ->
          let close = tm' >= tm && tm' - tm < sd in
          let conflicting = share e e' && close && not (e = e' && tm = tm') in
          if conflicting then Ctx.add_clause enc.ctx [ Lit.negate l; Lit.negate l' ])
        sigmas)
    sigmas

(* ---- OLSQ-specific (redundant) constraints, Improvement 1 baseline ---- *)

(* The original formulation gives every gate a space variable: an edge for
   two-qubit gates, a physical qubit for single-qubit gates, plus the
   consistency constraints tying spaces to mappings.  Eq. 2/3 are then
   phrased on space variables.  This reproduces the variable and
   constraint overhead that Improvement 1 removes. *)
let assert_olsq_space enc =
  let inst = enc.instance in
  let circuit = inst.Instance.circuit in
  let device = inst.Instance.device in
  let ne = Coupling.num_edges device in
  let np = Instance.num_physical inst in
  let sd = inst.Instance.swap_duration in
  let enc_kind = enc.config.Config.var_encoding in
  let space =
    Array.map
      (fun (g : Gate.t) ->
        Ivar.fresh enc.ctx enc_kind (if Gate.is_two_qubit g then ne else np))
      circuit.Circuit.gates
  in
  (* consistency between space, time and mapping variables *)
  Array.iter
    (fun (g : Gate.t) ->
      let id = g.Gate.id in
      match g.Gate.operands with
      | Gate.Two (q, q') ->
        for tm = 0 to enc.t_max - 1 do
          for e = 0 to ne - 1 do
            let p, p' = Coupling.edge device e in
            let on_edge =
              F.or_
                [
                  F.and_ [ Ivar.eq_const enc.pi.(q).(tm) p; Ivar.eq_const enc.pi.(q').(tm) p' ];
                  F.and_ [ Ivar.eq_const enc.pi.(q).(tm) p'; Ivar.eq_const enc.pi.(q').(tm) p ];
                ]
            in
            Ctx.assert_formula enc.ctx
              (F.imply
                 (F.and_ [ Ivar.eq_const enc.time.(id) tm; Ivar.eq_const space.(id) e ])
                 on_edge)
          done
        done
      | Gate.One q ->
        for tm = 0 to enc.t_max - 1 do
          for p = 0 to np - 1 do
            Ctx.assert_formula enc.ctx
              (F.imply
                 (F.and_ [ Ivar.eq_const enc.time.(id) tm; Ivar.eq_const space.(id) p ])
                 (Ivar.eq_const enc.pi.(q).(tm) p))
          done
        done)
    circuit.Circuit.gates;
  (* Eq. 2/3 via space variables *)
  List.iter
    (fun (e, tm, sl) ->
      let pa, pb = Coupling.edge device e in
      let t_from = max 0 (tm - sd + 1) in
      for t' = t_from to tm do
        Array.iter
          (fun (g : Gate.t) ->
            let id = g.Gate.id in
            let time_is = Ivar.eq_const enc.time.(id) t' in
            match g.Gate.operands with
            | Gate.One _ ->
              List.iter
                (fun p ->
                  Ctx.assert_formula enc.ctx
                    (F.imply
                       (F.and_ [ time_is; Ivar.eq_const space.(id) p ])
                       (F.Not (F.Atom sl))))
                [ pa; pb ]
            | Gate.Two _ ->
              for e' = 0 to ne - 1 do
                let pc, pd = Coupling.edge device e' in
                if pc = pa || pc = pb || pd = pa || pd = pb then
                  Ctx.assert_formula enc.ctx
                    (F.imply
                       (F.and_ [ time_is; Ivar.eq_const space.(id) e' ])
                       (F.Not (F.Atom sl)))
              done)
          circuit.Circuit.gates
      done)
    (sigma_lits enc)

(* ---- construction ---- *)

let build_raw ?(config = Config.default) ?proof instance ~t_max =
  if t_max < 1 then invalid_arg "Encoder.build: need at least one time step";
  let ctx = Ctx.create () in
  (* install the proof logger before any clause exists, or the logged
     premise set would be incomplete *)
  (match proof with None -> () | Some p -> Solver.set_proof_logger (Ctx.solver ctx) (Some p));
  let nq = Instance.num_qubits instance in
  let ne = Coupling.num_edges instance.Instance.device in
  let ng = Instance.num_gates instance in
  let sd = instance.Instance.swap_duration in
  let enc_kind = config.Config.var_encoding in
  let pi =
    Array.init nq (fun _ ->
        Array.init t_max (fun _ -> Ivar.fresh ctx enc_kind (Instance.num_physical instance)))
  in
  let time = Array.init ng (fun _ -> Ivar.fresh ctx enc_kind t_max) in
  let sigma =
    Array.init ne (fun _ ->
        Array.init t_max (fun tm ->
            (* allowed finish times: [S_D, t_max - 2] (see header) *)
            if tm >= sd && tm <= t_max - 2 then Some (Ctx.fresh_var ctx) else None))
  in
  let enc =
    {
      instance;
      config;
      ctx;
      t_max;
      pi;
      time;
      sigma;
      depth_selectors = Hashtbl.create 8;
      counters = [];
      counter_kind = None;
      simplify_report = None;
    }
  in
  let group label f =
    Ctx.set_provenance ctx label;
    f enc
  in
  group "injectivity" assert_injectivity;
  group "dependencies" assert_dependencies;
  group "transitions" assert_transitions;
  group "swap_swap_overlap" assert_swap_swap_overlap;
  (match config.Config.formulation with
  | Config.Olsq2 ->
    group "adjacency" assert_adjacency_olsq2;
    group "swap_gate_overlap" assert_swap_gate_overlap_olsq2
  | Config.Olsq ->
    (* In the original model, two-qubit adjacency is enforced indirectly:
       every gate owns a space variable (which always takes some value)
       and the consistency constraints tie it to the mapping at the
       gate's scheduled time. *)
    group "olsq_space" assert_olsq_space);
  Ctx.set_provenance ctx "other";
  (* Preprocess the finished encoding (paper pipeline: Z3 simplifies every
     bit-blasted instance before search).  Everything the caller reads
     back or assumes later is frozen first: the mapping/time variables
     (model extraction), the sigma variables (SWAP extraction and counter
     inputs built after this point).  Objective selectors don't exist yet;
     they are frozen at creation below.  The Lazy_int arm is excluded: its
     clause set grows through CEGAR refinement over theory atoms. *)
  (match config.Config.var_encoding with
  | Config.Lazy_int -> ()
  | Config.Onehot | Config.Binary ->
    if config.Config.simplify then begin
      let s = Ctx.solver ctx in
      let freeze_ivar iv = List.iter (fun l -> Solver.freeze s (Lit.var l)) (Ivar.literals iv) in
      Array.iter (fun row -> Array.iter freeze_ivar row) pi;
      Array.iter freeze_ivar time;
      Array.iter
        (Array.iter (function Some l -> Solver.freeze s (Lit.var l) | None -> ()))
        sigma;
      enc.simplify_report <- Some (Simplify.preprocess s);
      Simplify.attach_inprocessing s
    end);
  (* Portfolio-arm clause sharing: when the share hub is live, register
     this encoding's solver under a fingerprint of its database; arms
     that built the identical CNF join one channel.  Proof-logged
     encoders stay out entirely, so certified runs share nothing. *)
  if proof = None && Share.hub_active () then Share.hub_attach (Ctx.solver ctx);
  enc

(* One span per encoding build, carrying the clause/variable counts the
   paper's Fig. 1 narrative is about. *)
let build ?config ?proof instance ~t_max =
  let obs = Obs.global () in
  if not (Obs.enabled obs) then build_raw ?config ?proof instance ~t_max
  else begin
    let sp = Obs.begin_span obs "encode.build" ~attrs:[ ("t_max", Obs.Int t_max) ] in
    let enc = build_raw ?config ?proof instance ~t_max in
    let s = solver enc in
    Obs.end_span obs sp
      ~attrs:
        [
          ("config", Obs.Str (Config.name enc.config));
          ("vars", Obs.Int (Solver.nvars s));
          ("clauses", Obs.Int (Solver.n_clauses s));
        ];
    enc
  end

(* ---- objective bounds via selector literals (paper §III-B) ---- *)

(* Selector literal enforcing depth <= d time steps: all gates end before
   d, and no SWAP finishes at or after d. *)
let depth_selector enc d =
  match Hashtbl.find_opt enc.depth_selectors d with
  | Some l -> l
  | None ->
    Ctx.set_provenance enc.ctx "objective.depth";
    let l = Ctx.fresh enc.ctx in
    (* the guard is assumed across later solves: never eliminable *)
    Solver.freeze (solver enc) (Lit.var l);
    Array.iter (fun tv -> Ctx.assert_implied enc.ctx ~guard:l (Ivar.le_const tv (d - 1))) enc.time;
    List.iter
      (fun (_, tm, sl) -> if tm >= d then Ctx.add_clause enc.ctx [ Lit.negate l; Lit.negate sl ])
      (sigma_lits enc);
    Hashtbl.add enc.depth_selectors d l;
    l

(* Expressible-bound capacity of a counter. *)
let counter_capacity inputs = function
  | Card out -> Array.length out.Cardinality.count_ge - 1
  | Inc_card c -> Cardinality.Inc.capacity c
  | Adder_net _ -> inputs (* binary register covers the full range *)

(* Counter outputs become bound assumptions in later solves, and the
   adder's sum register is compared against lazily-created bounds:
   inprocessing must never eliminate them.  The incremental chain
   additionally freezes its interior registers — future [widen] calls
   emit clauses referencing every row. *)
let freeze_counter enc = function
  | Card out ->
    Array.iter (fun l -> Solver.freeze (solver enc) (Lit.var l)) out.Cardinality.count_ge
  | Inc_card c ->
    Cardinality.Inc.iter_registers c ~f:(fun l -> Solver.freeze (solver enc) (Lit.var l))
  | Adder_net net ->
    Array.iter (fun l -> Solver.freeze (solver enc) (Lit.var l)) (Pb.sum_bits net)

let build_counter_over enc lits ~max_bound =
  let n = Array.length lits in
  let wanted = min max_bound n in
  let capacity_ok (cap, _) = cap >= wanted in
  if not (List.exists capacity_ok enc.counters) then begin
    Ctx.set_provenance enc.ctx "objective.counter";
    let obs = Obs.global () in
    let v0, c0 =
      if Obs.enabled obs then (Solver.nvars (solver enc), Solver.n_clauses (solver enc))
      else (0, 0)
    in
    (* The sequential counter is a widenable Sinz chain: when a bound
       outgrows the chain built for an earlier iteration, [widen] emits
       only the new register levels instead of re-encoding a fresh
       full-width counter over the same inputs — the memoized
       sub-network is everything already in the solver. *)
    let inc_existing =
      List.find_map
        (function _, Inc_card c when Cardinality.Inc.size c = n -> Some c | _ -> None)
        enc.counters
    in
    let counter =
      match (enc.config.Config.cardinality, inc_existing) with
      | Config.Seq_counter, Some c ->
        Cardinality.Inc.widen c ~width:(max 1 (min n (wanted + 1)));
        Inc_card c
      | Config.Seq_counter, None ->
        let c = Cardinality.Inc.create ~width:(max 1 (min n (wanted + 1))) enc.ctx in
        Cardinality.Inc.add_inputs c lits;
        Inc_card c
      | Config.Totalizer, _ -> Card (Cardinality.totalizer enc.ctx lits)
      | Config.Adder, _ -> Adder_net (Pb.adder_network enc.ctx lits)
    in
    freeze_counter enc counter;
    let entry = (counter_capacity n counter, counter) in
    enc.counters <-
      (match counter with
      | Inc_card _ ->
        (* the widened chain replaces its stale-capacity entry *)
        entry
        :: List.filter (function _, Inc_card _ -> false | _ -> true) enc.counters
      | Card _ | Adder_net _ -> entry :: enc.counters);
    if Obs.enabled obs then
      Obs.instant obs "encode.counter"
        ~attrs:
          [
            ("max_bound", Obs.Int wanted);
            ("inputs", Obs.Int n);
            ("widened", Obs.Bool (inc_existing <> None));
            ("vars_added", Obs.Int (Solver.nvars (solver enc) - v0));
            ("clauses_added", Obs.Int (Solver.n_clauses (solver enc) - c0));
          ]
  end

(* Build (or widen) the SWAP-count counter (Eq. 5) so bounds up to
   [max_bound] are expressible.  Widening builds an additional counter
   over the same inputs; the narrow one keeps serving tight bounds. *)
let build_counter enc ~max_bound =
  (match enc.counter_kind with
  | Some Weighted -> invalid_arg "Encoder.build_counter: weighted counter already in use"
  | Some Plain | None -> ());
  enc.counter_kind <- Some Plain;
  let lits = Array.of_list (List.map (fun (_, _, l) -> l) (sigma_lits enc)) in
  build_counter_over enc lits ~max_bound

(* Assumption literal for "at most k SWAPs"; [None] when the bound is
   vacuous (k at or above every input count).  Requires [build_counter]. *)
let swap_bound_assumption enc k =
  if enc.counters = [] then invalid_arg "Encoder.swap_bound_assumption: counter not built";
  let try_counter (cap, counter) =
    if cap < k then None
    else
      match counter with
      | Card out -> Cardinality.at_most_assumption out k
      | Inc_card c -> Cardinality.Inc.at_most_assumption c k
      | Adder_net net ->
        let l = Pb.at_most_assumption enc.ctx net k in
        (* reified lazily, possibly between solves: freeze before an
           inprocessing pass can see it *)
        Solver.freeze (solver enc) (Lit.var l);
        Some l
  in
  (* prefer the narrowest counter able to express the bound *)
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) enc.counters in
  List.find_map try_counter ordered

(* Fidelity-aware (weighted) SWAP objective: each edge carries an integer
   cost [weights e] (e.g. scaled -log fidelity), and the bound constrains
   the weighted sum.  Encoded by repeating each sigma literal [weights e]
   times as counter inputs, so the unary count equals the weighted cost
   and the incremental-descent machinery applies unchanged.  The weight
   function must stay fixed for the encoder's lifetime. *)
let build_weighted_counter enc ~weights ~max_bound =
  (match enc.counter_kind with
  | Some Plain -> invalid_arg "Encoder.build_weighted_counter: plain counter already in use"
  | Some Weighted | None -> ());
  enc.counter_kind <- Some Weighted;
  let lits =
    List.concat_map
      (fun (e, _, l) ->
        let w = weights e in
        if w < 0 then invalid_arg "Encoder.build_weighted_counter: negative weight";
        List.init w (fun _ -> l))
      (sigma_lits enc)
    |> Array.of_list
  in
  build_counter_over enc lits ~max_bound

(* Weighted cost of the current model. *)
let model_weighted_cost enc ~weights =
  List.fold_left
    (fun acc (e, _, l) -> if Solver.model_value (solver enc) l then acc + weights e else acc)
    0 (sigma_lits enc)

(* ---- solving and extraction ---- *)

(* Lazy-integer configurations route through the theory CEGAR loop; all
   others hit the SAT core directly. *)
(* The [Lazy_int] arm must run its CEGAR loop around every solve, so a
   raw [Solver.solve] substitute (the cube-and-conquer pool) is only
   valid for the plain CNF encodings. *)
let pool_capable enc =
  match enc.config.Config.var_encoding with
  | Config.Lazy_int -> false
  | Config.Onehot | Config.Binary -> true

let solve ?(assumptions = []) ?max_conflicts ?timeout enc =
  match enc.config.Config.var_encoding with
  | Config.Lazy_int ->
    Theory_int.solve ~assumptions ?max_conflicts ?timeout (Theory_int.of_ctx enc.ctx)
  | Config.Onehot | Config.Binary ->
    Solver.solve ~assumptions ?max_conflicts ?timeout (solver enc)

let model_swaps enc =
  List.filter_map
    (fun (e, tm, l) ->
      if Solver.model_value (solver enc) l then
        Some { Result_.sw_edge = Coupling.edge enc.instance.Instance.device e; sw_finish = tm }
      else None)
    (sigma_lits enc)

let model_swap_count enc = List.length (model_swaps enc)

(* Extract a full synthesis result from the last model. *)
let extract ?(status = Result_.Feasible) ?(solve_seconds = 0.0) ?(iterations = 1) enc =
  let s = solver enc in
  let nq = Instance.num_qubits enc.instance in
  let ng = Instance.num_gates enc.instance in
  let schedule = Array.init ng (fun g -> Ivar.value s enc.time.(g)) in
  let swaps = model_swaps enc in
  let max_gate_time = Array.fold_left max 0 schedule in
  let max_swap_time = List.fold_left (fun acc sw -> max acc sw.Result_.sw_finish) 0 swaps in
  let depth = 1 + max max_gate_time max_swap_time in
  let mapping =
    Array.init depth (fun tm -> Array.init nq (fun q -> Ivar.value s enc.pi.(q).(tm)))
  in
  {
    Result_.status;
    depth;
    swap_count = List.length swaps;
    mapping;
    schedule;
    swaps;
    solve_seconds;
    iterations;
  }

(* Encoding size report, for the Fig. 1 / Table I narrative. *)
let size_report enc =
  let s = solver enc in
  (Solver.nvars s, Solver.n_clauses s)

(* Per-constraint-group clause counts (certificate provenance). *)
let provenance enc = Ctx.provenance enc.ctx

(* Domain-guided branching (paper §V future direction implemented):
   instead of the generic VSIDS initialization, seed activities so the
   solver decides the schedule in dependency order -- time variables of
   early ASAP layers first, then the mapping variables of the first time
   step -- and prefer "no SWAP" phases.  Call once after [build]. *)
let apply_branching_hints enc =
  let s = solver enc in
  let dag = enc.instance.Instance.dag in
  let layers = Dag.asap_layers dag in
  let depth = List.length layers in
  List.iteri
    (fun layer_idx gates ->
      let weight = float_of_int (4 * (depth - layer_idx)) in
      List.iter
        (fun g ->
          List.iter
            (fun l -> Solver.boost_activity s (Olsq2_sat.Lit.var l) weight)
            (Ivar.literals enc.time.(g)))
        gates)
    layers;
  Array.iter
    (fun per_time ->
      if Array.length per_time > 0 then
        List.iter
          (fun l -> Solver.boost_activity s (Olsq2_sat.Lit.var l) (float_of_int (4 * depth)))
          (Ivar.literals per_time.(0)))
    enc.pi;
  List.iter
    (fun (_, _, l) -> Solver.suggest_phase s (Olsq2_sat.Lit.var l) false)
    (sigma_lits enc)
