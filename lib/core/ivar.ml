(* Bounded-integer variables abstracting over the encodings of the
   paper's Improvement 3.  Layout encoders are written once against this
   interface, so switching encodings changes variable definitions only --
   mirroring the paper's observation that "changing the underlying encoding
   only affects variable definitions and not their usage in constraints".

   Encodings:
   - [Binary]: bit-vector variables, eagerly bit-blasted.  Equality-to-
     constant literals are memoized: "x = c" is defined once per (var, c)
     and shared across every constraint that mentions it, which keeps the
     big adjacency disjunctions narrow -- this sharing is what makes the
     bit-vector arm the paper's winner.
   - [Onehot]: the classical direct encoding (one Boolean per value with
     at-least-one / pairwise at-most-one axioms); an extra ablation arm.
   - [Lazy_int]: the stand-in for the paper's *integer* variables: atoms
     "x = c" / "x <= c" start as free Boolean literals whose integer
     semantics is enforced lazily by a theory module (Theory_int), the way
     a lazy SMT solver treats arithmetic.  See DESIGN.md §2. *)

module Formula = Olsq2_encode.Formula
module Ctx = Olsq2_encode.Ctx
module Bitvec = Olsq2_encode.Bitvec
module Onehot = Olsq2_encode.Onehot
module Lit = Olsq2_sat.Lit

type t =
  | One_hot of Onehot.t
  | Binary of {
      ctx : Ctx.t;
      bv : Bitvec.t;
      bound : int;
      eq_lits : (int, Lit.t) Hashtbl.t; (* memoized "x = c" literals *)
    }
  | Lazy of Theory_int.ivar

let fresh ctx (enc : Config.var_encoding) domain =
  if domain <= 0 then invalid_arg "Ivar.fresh: empty domain";
  match enc with
  | Config.Onehot -> One_hot (Onehot.fresh ctx domain)
  | Config.Binary ->
    let width = Bitvec.bits_for_range domain in
    let bv = Bitvec.fresh ctx width in
    if domain < 1 lsl width then Bitvec.assert_lt_const ctx bv domain;
    Binary { ctx; bv; bound = domain; eq_lits = Hashtbl.create (2 * domain) }
  | Config.Lazy_int -> Lazy (Theory_int.new_var (Theory_int.of_ctx ctx) ~domain)

let domain = function
  | One_hot oh -> Onehot.domain oh
  | Binary { bound; _ } -> bound
  | Lazy iv -> Theory_int.domain iv

(* Shared "x = c" literal for binary variables: defined once with full
   equivalence, then reused everywhere. *)
let binary_eq_lit ctx bv eq_lits c =
  match Hashtbl.find_opt eq_lits c with
  | Some l -> l
  | None ->
    let l = Ctx.fresh ctx in
    let bits = Bitvec.bits bv in
    let signed i =
      if (c lsr i) land 1 = 1 then bits.(i) else Lit.negate bits.(i)
    in
    (* l => each bit matches *)
    Array.iteri (fun i _ -> Ctx.add_clause ctx [ Lit.negate l; signed i ]) bits;
    (* all bits match => l *)
    Ctx.add_clause ctx (l :: Array.to_list (Array.mapi (fun i _ -> Lit.negate (signed i)) bits));
    Hashtbl.add eq_lits c l;
    l

let eq_const v k =
  match v with
  | One_hot oh -> Onehot.eq_const oh k
  | Binary { ctx; bv; bound; eq_lits } ->
    if k < 0 || k >= bound then Formula.False
    else Formula.Atom (binary_eq_lit ctx bv eq_lits k)
  | Lazy iv -> Theory_int.eq_const iv k

let neq_const v k = Formula.not_ (eq_const v k)

let eq a b =
  match (a, b) with
  | One_hot x, One_hot y -> Onehot.eq x y
  | Binary x, Binary y -> Bitvec.eq x.bv y.bv
  | Lazy x, Lazy y -> Theory_int.eq_var x y
  | (One_hot _ | Binary _ | Lazy _), _ -> invalid_arg "Ivar.eq: mixed encodings"

let neq a b =
  match (a, b) with
  | One_hot x, One_hot y ->
    (* per-value 2-clauses, stronger than the negated Iff form *)
    Formula.and_
      (List.init (Onehot.domain x)
         (fun v ->
           Formula.or_ [ Formula.not_ (Onehot.eq_const x v); Formula.not_ (Onehot.eq_const y v) ]))
  | Binary _, Binary _ -> Formula.not_ (eq a b)
  | Lazy x, Lazy y ->
    Formula.and_
      (List.init (min (Theory_int.domain x) (Theory_int.domain y))
         (fun v ->
           Formula.or_
             [ Formula.not_ (Theory_int.eq_const x v); Formula.not_ (Theory_int.eq_const y v) ]))
  | (One_hot _ | Binary _ | Lazy _), _ -> invalid_arg "Ivar.neq: mixed encodings"

let le_const v k =
  match v with
  | One_hot oh -> Onehot.le_const oh k
  | Binary { bv; bound; _ } -> if k >= bound - 1 then Formula.True else Bitvec.le_const bv k
  | Lazy iv -> Theory_int.le_const iv k

let lt_const v k = le_const v (k - 1)
let ge_const v k = Formula.not_ (lt_const v k)

let lt a b =
  match (a, b) with
  | One_hot x, One_hot y -> Onehot.lt x y
  | Binary x, Binary y -> Bitvec.lt x.bv y.bv
  | Lazy x, Lazy y -> Theory_int.lt_var x y
  | (One_hot _ | Binary _ | Lazy _), _ -> invalid_arg "Ivar.lt: mixed encodings"

let le a b =
  match (a, b) with
  | One_hot _, One_hot _ | Lazy _, Lazy _ -> Formula.not_ (lt b a)
  | Binary x, Binary y -> Bitvec.le x.bv y.bv
  | (One_hot _ | Binary _ | Lazy _), _ -> invalid_arg "Ivar.le: mixed encodings"

let value solver = function
  | One_hot oh -> Onehot.value solver oh
  | Binary { bv; _ } -> Bitvec.value solver bv
  | Lazy iv -> Theory_int.value solver iv

(* Underlying Boolean literals (for solver branching hints). *)
let literals = function
  | One_hot oh -> Array.to_list (Onehot.lits oh)
  | Binary { bv; _ } -> Array.to_list (Bitvec.bits bv)
  | Lazy iv -> Theory_int.atom_lits iv
