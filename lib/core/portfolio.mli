(** Parallel portfolio synthesis (the paper's §V parallelization
    direction, implemented with OCaml 5 domains): several
    formulation/encoding/model arms race on independent solvers and the
    best valid result wins. *)

type objective = Depth | Swaps

type arm = {
  arm_name : string;
  arm_config : Config.t;
  arm_model : [ `Full | `Transition ];
}

(** Built-in arm sets per objective (bit-vector, inverse-channel /
    totalizer, transition-based). *)
val default_arms : objective -> arm list

type arm_outcome = {
  arm : arm;
  seconds : float;
  result : Result_.t option;  (** validated before being reported *)
  blocks : int option;
  optimal : bool;
}

type report = { winner : arm_outcome option; arms : arm_outcome list }

(** Run every arm in its own domain and pick the best outcome (smaller
    objective; ties break on proven optimality, then wall-clock). *)
val run : ?budget_seconds:float -> ?arms:arm list -> objective -> Instance.t -> report
