(** Parallel portfolio synthesis (the paper's §V parallelization
    direction, implemented with OCaml 5 domains): several
    formulation/encoding/model arms race on independent solvers and the
    best valid result wins. *)

type objective = Depth | Swaps

type arm = {
  arm_name : string;
  arm_config : Config.t;
  arm_model : [ `Full | `Transition ];
}

(** Built-in arm sets per objective (bit-vector, inverse-channel /
    totalizer, transition-based). *)
val default_arms : objective -> arm list

type arm_outcome = {
  arm : arm;
  seconds : float;
  result : Result_.t option;  (** validated before being reported *)
  blocks : int option;
  optimal : bool;
  arm_stats : Olsq2_sat.Solver.stats;
      (** aggregate search effort of this arm's optimization run (each arm
          collects in its own domain; see {!Olsq2_sat.Solver.stats}) *)
}

type report = {
  winner : arm_outcome option;
  arms : arm_outcome list;
  certificate : Certificate.t option;
      (** present only when [certify] was requested and the winner is a
          full-model arm that proved optimality *)
}

(** Run every arm in its own domain and pick the best outcome (smaller
    objective; ties break on proven optimality, then wall-clock).

    [budget] applies per arm (each arm starts its own {!Budget.state}, so
    the wall deadline and conflict cap bound every arm identically).

    [certify] rebuilds the winner's optimality claim on a fresh
    proof-logged solve (see {!Certificate}); arms race with arbitrary
    encodings, so no arm's own solver state is trusted for the proof.
    [proof_file] writes the emitted DRAT proof there.

    [share] activates the {!Olsq2_parallel.Share} hub for the duration of
    the race: arms whose base CNF matches by fingerprint exchange short
    learnt clauses (imports restricted to the variables present at attach
    time, so lazily-built counter variables never cross arms).  The hub is
    deactivated before certification, so proof-logged solvers never
    import. *)
val run :
  ?budget:Budget.t ->
  ?arms:arm list ->
  ?certify:bool ->
  ?proof_file:string ->
  ?share:bool ->
  objective ->
  Instance.t ->
  report
