module Stopwatch = Olsq2_util.Stopwatch
module Solver = Olsq2_sat.Solver

(* External preemption handle: a cross-domain flag plus the solvers
   currently serving the budgeted run.  [preempt] raises the flag and
   interrupts every attached solver, so a watchdog in another domain can
   stop a run mid-search (the serve daemon's wall-deadline enforcement);
   a solver attached after the fact is interrupted immediately. *)
type control = {
  preempted : bool Atomic.t;
  mutable attached : Solver.t list;
  cm : Mutex.t;
}

let control () = { preempted = Atomic.make false; attached = []; cm = Mutex.create () }

let preempt ctl =
  Atomic.set ctl.preempted true;
  Mutex.lock ctl.cm;
  let solvers = ctl.attached in
  Mutex.unlock ctl.cm;
  List.iter Solver.interrupt solvers

let preempted ctl = Atomic.get ctl.preempted

type t = {
  wall_seconds : float option;
  max_conflicts : int option;
  per_bound_seconds : float option;
  control : control option;
}

let unlimited =
  { wall_seconds = None; max_conflicts = None; per_bound_seconds = None; control = None }

let of_seconds s = { unlimited with wall_seconds = Some s }
let of_seconds_opt = function None -> unlimited | Some s -> of_seconds s
let with_conflicts c b = { b with max_conflicts = Some c }
let with_per_bound_seconds s b = { b with per_bound_seconds = Some s }
let with_control ctl b = { b with control = Some ctl }

let is_unlimited b =
  b.wall_seconds = None && b.max_conflicts = None && b.per_bound_seconds = None

(* [control] is a runtime handle, not a declarative limit: it is skipped
   by serialization and ignored by [equal]. *)
let equal a b =
  a.wall_seconds = b.wall_seconds
  && a.max_conflicts = b.max_conflicts
  && a.per_bound_seconds = b.per_bound_seconds

let to_assoc b =
  List.concat
    [
      (match b.wall_seconds with Some s -> [ ("wall_seconds", string_of_float s) ] | None -> []);
      (match b.max_conflicts with Some c -> [ ("max_conflicts", string_of_int c) ] | None -> []);
      (match b.per_bound_seconds with
      | Some s -> [ ("per_bound_seconds", string_of_float s) ]
      | None -> []);
    ]

let of_assoc assoc =
  let float_field name k =
    match List.assoc_opt name assoc with
    | None -> Ok None
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0. -> Ok (Some f)
      | Some _ | None -> Error (Printf.sprintf "%s: expected a non-negative number, got %S" k s))
  in
  let int_field name =
    match List.assoc_opt name assoc with
    | None -> Ok None
    | Some s -> (
      match int_of_string_opt s with
      | Some i when i >= 0 -> Ok (Some i)
      | Some _ | None ->
        Error (Printf.sprintf "%s: expected a non-negative integer, got %S" name s))
  in
  match
    (float_field "wall_seconds" "wall_seconds", int_field "max_conflicts",
     float_field "per_bound_seconds" "per_bound_seconds")
  with
  | Ok wall_seconds, Ok max_conflicts, Ok per_bound_seconds ->
    Ok { wall_seconds; max_conflicts; per_bound_seconds; control = None }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

type state = {
  limits : t;
  deadline : float option; (* absolute, fixed at [start] *)
  mutable conflicts_spent : int;
}

let start b =
  {
    limits = b;
    deadline = Option.map (fun s -> Stopwatch.now () +. s) b.wall_seconds;
    conflicts_spent = 0;
  }

let remaining_seconds st =
  match st.deadline with None -> infinity | Some d -> d -. Stopwatch.now ()

let conflicts_left st =
  match st.limits.max_conflicts with None -> None | Some m -> Some (m - st.conflicts_spent)

let exhausted st =
  (match st.limits.control with Some ctl -> preempted ctl | None -> false)
  || (match st.deadline with Some d -> Stopwatch.now () >= d | None -> false)
  || match conflicts_left st with Some c -> c <= 0 | None -> false

let attach st solver =
  match st.limits.control with
  | None -> ()
  | Some ctl ->
    Mutex.lock ctl.cm;
    let known = List.memq solver ctl.attached in
    if not known then ctl.attached <- solver :: ctl.attached;
    Mutex.unlock ctl.cm;
    (* a run already past its deadline must not start fresh search on a
       newly built solver *)
    if Atomic.get ctl.preempted then Solver.interrupt solver

let solve_timeout st =
  let wall = match st.deadline with None -> None | Some d -> Some (d -. Stopwatch.now ()) in
  match (wall, st.limits.per_bound_seconds) with
  | None, None -> None
  | Some w, None -> Some w
  | None, Some p -> Some p
  | Some w, Some p -> Some (Float.min w p)

let solve_max_conflicts st =
  (* a solve call must get at least 1 so an exhausted budget is decided
     by [exhausted], not by a zero-conflict Unknown *)
  Option.map (fun c -> max 1 c) (conflicts_left st)

let charge st ~conflicts = st.conflicts_spent <- st.conflicts_spent + max 0 conflicts
