module Stopwatch = Olsq2_util.Stopwatch

type t = {
  wall_seconds : float option;
  max_conflicts : int option;
  per_bound_seconds : float option;
}

let unlimited = { wall_seconds = None; max_conflicts = None; per_bound_seconds = None }
let of_seconds s = { unlimited with wall_seconds = Some s }
let of_seconds_opt = function None -> unlimited | Some s -> of_seconds s
let with_conflicts c b = { b with max_conflicts = Some c }
let with_per_bound_seconds s b = { b with per_bound_seconds = Some s }

let is_unlimited b =
  b.wall_seconds = None && b.max_conflicts = None && b.per_bound_seconds = None

let to_assoc b =
  List.concat
    [
      (match b.wall_seconds with Some s -> [ ("wall_seconds", string_of_float s) ] | None -> []);
      (match b.max_conflicts with Some c -> [ ("max_conflicts", string_of_int c) ] | None -> []);
      (match b.per_bound_seconds with
      | Some s -> [ ("per_bound_seconds", string_of_float s) ]
      | None -> []);
    ]

type state = {
  limits : t;
  deadline : float option; (* absolute, fixed at [start] *)
  mutable conflicts_spent : int;
}

let start b =
  {
    limits = b;
    deadline = Option.map (fun s -> Stopwatch.now () +. s) b.wall_seconds;
    conflicts_spent = 0;
  }

let remaining_seconds st =
  match st.deadline with None -> infinity | Some d -> d -. Stopwatch.now ()

let conflicts_left st =
  match st.limits.max_conflicts with None -> None | Some m -> Some (m - st.conflicts_spent)

let exhausted st =
  (match st.deadline with Some d -> Stopwatch.now () >= d | None -> false)
  || match conflicts_left st with Some c -> c <= 0 | None -> false

let solve_timeout st =
  let wall = match st.deadline with None -> None | Some d -> Some (d -. Stopwatch.now ()) in
  match (wall, st.limits.per_bound_seconds) with
  | None, None -> None
  | Some w, None -> Some w
  | None, Some p -> Some p
  | Some w, Some p -> Some (Float.min w p)

let solve_max_conflicts st =
  (* a solve call must get at least 1 so an exhausted budget is decided
     by [exhausted], not by a zero-conflict Unknown *)
  Option.map (fun c -> max 1 c) (conflicts_left st)

let charge st ~conflicts = st.conflicts_spent <- st.conflicts_spent + max 0 conflicts
