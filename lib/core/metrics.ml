(* Success-rate metrics for synthesized layouts.

   The paper's motivation (§I): NISQ program success rates suffer from
   every inserted SWAP (three extra CNOTs' worth of gate error) and from
   every extra time step of circuit depth (decoherence).  This module
   turns a synthesis result into those figures of merit so users can
   compare synthesizers on the quantity they actually care about. *)

module Circuit = Olsq2_circuit.Circuit
module Gate = Olsq2_circuit.Gate

type t = {
  depth : int;
  single_qubit_gates : int;
  two_qubit_gates : int; (* original circuit's 2q gates *)
  swap_gates : int;
  equivalent_cnots : int; (* 2q gates + 3 per SWAP *)
  log_success : float; (* natural log of the estimated success probability *)
}

type error_model = {
  single_qubit_fidelity : float;
  two_qubit_fidelity : float;
  coherence_steps : float;
      (* time steps after which idle decay reaches 1/e (T1/T2 proxy,
         expressed in scheduler steps) *)
}

(* Representative superconducting-era figures (~99.9% 1q, ~99% 2q). *)
let default_error_model =
  { single_qubit_fidelity = 0.999; two_qubit_fidelity = 0.99; coherence_steps = 3000.0 }

let of_result ?(model = default_error_model) (instance : Instance.t) (r : Result_.t) =
  let circuit = instance.Instance.circuit in
  let n1 = List.length (Circuit.single_qubit_gates circuit) in
  let n2 = Circuit.count_two_qubit circuit in
  let nswap = r.Result_.swap_count in
  let equivalent_cnots = n2 + (3 * nswap) in
  let gate_term =
    (float_of_int n1 *. log model.single_qubit_fidelity)
    +. (float_of_int equivalent_cnots *. log model.two_qubit_fidelity)
  in
  (* decoherence: every active program qubit idles for [depth] steps *)
  let active =
    Array.fold_left (fun acc used -> if used then acc + 1 else acc) 0 (Circuit.used_qubits circuit)
  in
  let decoherence_term =
    -.(float_of_int (active * r.Result_.depth) /. model.coherence_steps)
  in
  {
    depth = r.Result_.depth;
    single_qubit_gates = n1;
    two_qubit_gates = n2;
    swap_gates = nswap;
    equivalent_cnots;
    log_success = gate_term +. decoherence_term;
  }

let success_probability m = exp m.log_success

(* Ratio of success probabilities: how many times likelier [a] is to
   succeed than [b]. *)
let success_ratio a b = exp (a.log_success -. b.log_success)

let pp fmt m =
  Format.fprintf fmt
    "depth=%d gates(1q)=%d gates(2q)=%d swaps=%d cnot-equivalent=%d est. success=%.2f%%" m.depth
    m.single_qubit_gates m.two_qubit_gates m.swap_gates m.equivalent_cnots
    (100.0 *. success_probability m)
