(* Unified facade over the Optimizer engine.  Dispatches each objective
   to the corresponding engine loop, converts the engine-specific outcome
   into the shared report, and snapshots the global tracer so the report
   carries the trace summary of exactly this run. *)

module Obs = Olsq2_obs.Obs

type objective =
  | Depth
  | Swaps of { warm_start : int option }
  | Weighted_swaps of (int -> int)
  | Tb_blocks
  | Tb_swaps

type report = {
  result : Result_.t option;
  optimal : bool;
  iterations : int;
  seconds : float;
  pareto : (int * int) list;
  trace : Obs.summary;
  solver_stats : Olsq2_sat.Solver.stats;
  iter_stats : Optimizer.iter_stat list;
  certificate : Certificate.t option;
}

let objective_name = function
  | Depth -> "depth"
  | Swaps _ -> "swaps"
  | Weighted_swaps _ -> "weighted_swaps"
  | Tb_blocks -> "tb_blocks"
  | Tb_swaps -> "tb_swaps"

let of_outcome (o : Optimizer.outcome) ~trace =
  {
    result = o.Optimizer.result;
    optimal = o.Optimizer.optimal;
    iterations = o.Optimizer.iterations;
    seconds = o.Optimizer.total_seconds;
    pareto = o.Optimizer.pareto;
    trace;
    solver_stats = o.Optimizer.stats;
    iter_stats = o.Optimizer.iter_stats;
    certificate = None;
  }

(* TB outcomes carry the block model; expose it through the unified
   record as the expanded schedule plus a (blocks, swap_count) pareto
   entry so no information is lost. *)
let of_tb_outcome (o : Optimizer.tb_outcome) ~trace =
  let result, pareto =
    match o.Optimizer.tb_result with
    | Some r -> (Some r.Tb_encoder.expanded, [ (r.Tb_encoder.blocks, r.Tb_encoder.swap_count) ])
    | None -> (None, [])
  in
  {
    result;
    optimal = o.Optimizer.tb_optimal;
    iterations = o.Optimizer.tb_iterations;
    seconds = o.Optimizer.tb_seconds;
    pareto;
    trace;
    solver_stats = o.Optimizer.tb_stats;
    iter_stats = o.Optimizer.tb_iter_stats;
    certificate = None;
  }

(* Certificates exist for the objectives with an exact SAT-level bound
   semantics: depth, and swaps-at-fixed-depth.  Weighted and TB objectives
   have no direct CNF bound to refute (weighted counts repeat literals; TB
   optimality is per-block), so they return no certificate. *)
let certificate_for ~config ~budget ~objective ~proof_file (report : report) instance =
  match report.result with
  | None -> None
  | Some res ->
    if not report.optimal then None
    else (
      match objective with
      | Depth ->
        Some
          (Certificate.certify_depth ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth)
      | Swaps _ ->
        Some
          (Certificate.certify_swaps ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth ~swaps:res.Result_.swap_count)
      | Weighted_swaps _ | Tb_blocks | Tb_swaps -> None)

let run ?(config = Config.default) ?simplify ?budget ?(certify = false) ?proof_file ~objective
    instance =
  (* [simplify] overrides the config's flag, so callers can toggle
     preprocessing without assembling a Config by hand; the override also
     reaches the certification re-solve below through [config]. *)
  let config =
    match simplify with None -> config | Some b -> { config with Config.simplify = b }
  in
  let obs = Obs.global () in
  let since = if Obs.enabled obs then Some (Obs.elapsed obs) else None in
  let dispatch () =
    match objective with
    | Depth ->
      `Full (Optimizer.minimize_depth ~config ?budget_seconds:budget instance)
    | Swaps { warm_start } ->
      `Full (Optimizer.minimize_swaps ~config ?budget_seconds:budget ?warm_start instance)
    | Weighted_swaps weights ->
      `Full (Optimizer.minimize_weighted_swaps ~config ?budget_seconds:budget ~weights instance)
    | Tb_blocks -> `Tb (Optimizer.tb_minimize_blocks ~config ?budget_seconds:budget instance)
    | Tb_swaps -> `Tb (Optimizer.tb_minimize_swaps ~config ?budget_seconds:budget instance)
  in
  let engine_outcome =
    Obs.with_span obs ("synthesis." ^ objective_name objective) dispatch
  in
  let report =
    match engine_outcome with
    | `Full o -> of_outcome o ~trace:Obs.empty_summary
    | `Tb o -> of_tb_outcome o ~trace:Obs.empty_summary
  in
  let certificate =
    if certify then certificate_for ~config ~budget ~objective ~proof_file report instance
    else None
  in
  let trace = if Obs.enabled obs then Obs.summary ?since obs else Obs.empty_summary in
  { report with trace; certificate }
