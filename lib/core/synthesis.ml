(* Unified facade over the Optimizer engine.  Dispatches each objective
   to the corresponding engine loop, converts the engine-specific outcome
   into the shared report, and snapshots the global tracer so the report
   carries the trace summary of exactly this run. *)

module Obs = Olsq2_obs.Obs
module Pool = Olsq2_parallel.Pool

module Options = struct
  type parallel = { workers : int; share : bool; cube_depth : int option }

  type t = {
    config : Config.t;
    simplify : bool option;
    budget : Budget.t;
    certify : bool;
    proof_file : string option;
    parallel : parallel;
    incremental : bool;
        (* solve depth/SWAP objectives on one persistent
           horizon-extension session (lib/incremental) instead of
           re-encoding per horizon; TB objectives ignore it *)
    device : string option;
        (* named device (Devices.by_name) this request targets; carried
           here so wire requests and the CLI can select topology and
           strategy through one options record *)
    sat : Olsq2_sat.Tuning.t;
        (* SAT-core search strategy (restart schedule, phase policy,
           reduce-DB, vivification, arena sizing, share filters); installed
           as the ambient tuning around the whole run, so every solver the
           engines create — encoder contexts, incremental sessions, pool
           replicas — inherits it *)
  }

  let sequential = { workers = 1; share = true; cube_depth = None }

  (* OLSQ2_WORKERS picks the default worker count so tests and CI can run
     the whole suite parallel without threading a flag through every
     harness. *)
  let default_workers =
    match Sys.getenv_opt "OLSQ2_WORKERS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1

  (* The horizon-extension session is the default solve strategy: it
     reaches the same optima as the classic re-encode loop (bench/regress
     cross-checks every instance and test/test_properties.ml asserts the
     identity property) at a fraction of the wall time, because horizon
     growth emits delta CNF and learnt clauses survive it.
     OLSQ2_INCREMENTAL=false restores the re-encode loop suite-wide, so
     CI can cross-check the two strategies without per-harness flags. *)
  let default_incremental =
    match Sys.getenv_opt "OLSQ2_INCREMENTAL" with
    | Some s -> ( match bool_of_string_opt (String.trim s) with Some b -> b | None -> true)
    | None -> true

  let default =
    {
      config = Config.default;
      simplify = None;
      budget = Budget.unlimited;
      certify = false;
      proof_file = None;
      parallel = { sequential with workers = default_workers };
      incremental = default_incremental;
      device = None;
      sat = Olsq2_sat.Tuning.default;
    }

  let with_config config t = { t with config }
  let with_simplify simplify t = { t with simplify = Some simplify }
  let with_budget budget t = { t with budget }
  let with_certify ?(proof_file : string option) certify t = { t with certify; proof_file }
  let with_incremental incremental t = { t with incremental }
  let with_device device t = { t with device = Some device }
  let with_tuning sat t = { t with sat }

  let with_workers ?share ?cube_depth workers t =
    {
      t with
      parallel =
        {
          workers = max 1 workers;
          share = (match share with Some s -> s | None -> t.parallel.share);
          cube_depth = (match cube_depth with Some _ -> cube_depth | None -> t.parallel.cube_depth);
        };
    }

  (* [Budget.control] is a runtime handle: ignored here, and skipped by
     the codec below. *)
  let equal a b =
    a.config = b.config && a.simplify = b.simplify
    && Budget.equal a.budget b.budget
    && a.certify = b.certify && a.proof_file = b.proof_file && a.parallel = b.parallel
    && a.incremental = b.incremental && a.device = b.device
    && Olsq2_sat.Tuning.equal a.sat b.sat

  (* ---- JSON codec (the serve daemon's wire format) ----

     One canonical options representation shared by the server, the CLI
     and the tests.  Nested string assocs ([Config.to_assoc],
     [Budget.to_assoc]) become JSON objects with typed values where the
     type is unambiguous (bools, numbers), so the wire format reads
     naturally; [of_assoc] accepts both typed and stringly values. *)

  module Json = Olsq2_obs.Obs.Json

  let string_assoc_to_json kvs =
    Json.Obj
      (List.map
         (fun (k, v) ->
           match (bool_of_string_opt v, float_of_string_opt v) with
           | Some b, _ -> (k, Json.Bool b)
           | None, Some f -> (k, Json.Num f)
           | None, None -> (k, Json.Str v))
         kvs)

  (* Render a float the way [Budget.to_assoc] / [Config.to_assoc] parse
     it back; integers print without the trailing dot JSON dislikes. *)
  let json_value_to_string = function
    | Json.Bool b -> Some (string_of_bool b)
    | Json.Num f ->
      Some
        (if Float.is_integer f && Float.abs f < 1e15 then
           string_of_int (int_of_float f)
         else string_of_float f)
    | Json.Str s -> Some s
    | Json.Null | Json.Arr _ | Json.Obj _ -> None

  let json_to_string_assoc name j =
    match j with
    | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          Result.bind acc (fun acc ->
              match json_value_to_string v with
              | Some s -> Ok ((k, s) :: acc)
              | None -> Error (Printf.sprintf "%s.%s: expected a scalar value" name k)))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> Error (Printf.sprintf "%s: expected an object" name)

  let to_assoc t =
    [
      ("config", string_assoc_to_json (Config.to_assoc t.config));
      ("simplify", match t.simplify with None -> Json.Null | Some b -> Json.Bool b);
      ("budget", string_assoc_to_json (Budget.to_assoc t.budget));
      ("certify", Json.Bool t.certify);
      ("proof_file", match t.proof_file with None -> Json.Null | Some f -> Json.Str f);
      ( "parallel",
        Json.Obj
          [
            ("workers", Json.Num (float_of_int t.parallel.workers));
            ("share", Json.Bool t.parallel.share);
            ( "cube_depth",
              match t.parallel.cube_depth with
              | None -> Json.Null
              | Some k -> Json.Num (float_of_int k) );
          ] );
      ("incremental", Json.Bool t.incremental);
      ("device", match t.device with None -> Json.Null | Some d -> Json.Str d);
      ("sat", string_assoc_to_json (Olsq2_sat.Tuning.to_assoc t.sat));
    ]

  let to_json t = Json.Obj (to_assoc t)

  (* Missing keys keep [default]'s value, so partial wire requests stay
     valid; [Null] means an explicit "unset". *)
  let of_assoc assoc =
    let ( let* ) r f = Result.bind r f in
    let find k = List.assoc_opt k assoc in
    let bool_field name default =
      match find name with
      | None | Some Json.Null -> Ok default
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error (Printf.sprintf "%s: expected a bool" name)
    in
    let* config =
      match find "config" with
      | None | Some Json.Null -> Ok default.config
      | Some j ->
        let* kvs = json_to_string_assoc "config" j in
        Config.of_assoc kvs
    in
    let* simplify =
      match find "simplify" with
      | None | Some Json.Null -> Ok None
      | Some (Json.Bool b) -> Ok (Some b)
      | Some _ -> Error "simplify: expected a bool or null"
    in
    let* budget =
      match find "budget" with
      | None | Some Json.Null -> Ok Budget.unlimited
      | Some j ->
        let* kvs = json_to_string_assoc "budget" j in
        Budget.of_assoc kvs
    in
    let* certify = bool_field "certify" default.certify in
    let* proof_file =
      match find "proof_file" with
      | None | Some Json.Null -> Ok None
      | Some (Json.Str f) -> Ok (Some f)
      | Some _ -> Error "proof_file: expected a string or null"
    in
    let* parallel =
      match find "parallel" with
      | None | Some Json.Null -> Ok default.parallel
      | Some (Json.Obj kvs) ->
        let pfind k = List.assoc_opt k kvs in
        let* workers =
          match pfind "workers" with
          | None | Some Json.Null -> Ok default.parallel.workers
          | Some (Json.Num f) when Float.is_integer f && f >= 1. -> Ok (int_of_float f)
          | Some _ -> Error "parallel.workers: expected a positive integer"
        in
        let* share =
          match pfind "share" with
          | None | Some Json.Null -> Ok default.parallel.share
          | Some (Json.Bool b) -> Ok b
          | Some _ -> Error "parallel.share: expected a bool"
        in
        let* cube_depth =
          match pfind "cube_depth" with
          | None | Some Json.Null -> Ok None
          | Some (Json.Num f) when Float.is_integer f && f >= 0. -> Ok (Some (int_of_float f))
          | Some _ -> Error "parallel.cube_depth: expected a non-negative integer"
        in
        Ok { workers; share; cube_depth }
      | Some _ -> Error "parallel: expected an object"
    in
    let* incremental = bool_field "incremental" default.incremental in
    let* device =
      match find "device" with
      | None | Some Json.Null -> Ok None
      | Some (Json.Str d) -> Ok (Some d)
      | Some _ -> Error "device: expected a string or null"
    in
    let* sat =
      match find "sat" with
      | None | Some Json.Null -> Ok default.sat
      | Some j ->
        let* kvs = json_to_string_assoc "sat" j in
        Olsq2_sat.Tuning.of_assoc kvs
    in
    Ok { config; simplify; budget; certify; proof_file; parallel; incremental; device; sat }

  let of_json = function
    | Json.Obj assoc -> of_assoc assoc
    | _ -> Error "options: expected an object"
end

type objective =
  | Depth
  | Swaps of { warm_start : int option }
  | Weighted_swaps of (int -> int)
  | Tb_blocks
  | Tb_swaps

type report = {
  result : Result_.t option;
  optimal : bool;
  iterations : int;
  seconds : float;
  pareto : (int * int) list;
  trace : Obs.summary;
  solver_stats : Olsq2_sat.Solver.stats;
  iter_stats : Optimizer.iter_stat list;
  certificate : Certificate.t option;
}

let objective_name = function
  | Depth -> "depth"
  | Swaps _ -> "swaps"
  | Weighted_swaps _ -> "weighted_swaps"
  | Tb_blocks -> "tb_blocks"
  | Tb_swaps -> "tb_swaps"

let of_outcome (o : Optimizer.outcome) ~trace =
  {
    result = o.Optimizer.result;
    optimal = o.Optimizer.optimal;
    iterations = o.Optimizer.iterations;
    seconds = o.Optimizer.total_seconds;
    pareto = o.Optimizer.pareto;
    trace;
    solver_stats = o.Optimizer.stats;
    iter_stats = o.Optimizer.iter_stats;
    certificate = None;
  }

(* TB outcomes carry the block model; expose it through the unified
   record as the expanded schedule plus a (blocks, swap_count) pareto
   entry so no information is lost. *)
let of_tb_outcome (o : Optimizer.tb_outcome) ~trace =
  let result, pareto =
    match o.Optimizer.tb_result with
    | Some r -> (Some r.Tb_encoder.expanded, [ (r.Tb_encoder.blocks, r.Tb_encoder.swap_count) ])
    | None -> (None, [])
  in
  {
    result;
    optimal = o.Optimizer.tb_optimal;
    iterations = o.Optimizer.tb_iterations;
    seconds = o.Optimizer.tb_seconds;
    pareto;
    trace;
    solver_stats = o.Optimizer.tb_stats;
    iter_stats = o.Optimizer.tb_iter_stats;
    certificate = None;
  }

(* Certificates exist for the objectives with an exact SAT-level bound
   semantics: depth, and swaps-at-fixed-depth.  Weighted and TB objectives
   have no direct CNF bound to refute (weighted counts repeat literals; TB
   optimality is per-block), so they return no certificate. *)
let certificate_for ~config ~budget ~objective ~proof_file (report : report) instance =
  match report.result with
  | None -> None
  | Some res ->
    if not report.optimal then None
    else (
      match objective with
      | Depth ->
        Some
          (Certificate.certify_depth ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth)
      | Swaps _ ->
        Some
          (Certificate.certify_swaps ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth ~swaps:res.Result_.swap_count)
      | Weighted_swaps _ | Tb_blocks | Tb_swaps -> None)

let run ?(options = Options.default) ~objective instance =
  (* [simplify] overrides the config's flag, so callers can toggle
     preprocessing without assembling a Config by hand; the override also
     reaches the certification re-solve below through [config]. *)
  let config =
    match options.Options.simplify with
    | None -> options.Options.config
    | Some b -> { options.Options.config with Config.simplify = b }
  in
  let budget = options.Options.budget in
  let par = options.Options.parallel in
  Olsq2_sat.Tuning.with_ambient options.Options.sat @@ fun () ->
  (* The pool parallelizes single bound queries (cube-and-conquer over
     worker domains); it is created per run and passed down so every
     refinement loop can route its hard queries through it.  Certification
     is untouched: it re-solves on fresh sequential proof-logged encoders,
     and Pool.solve refuses proof-logging masters anyway. *)
  let pool =
    if par.Options.workers > 1 then
      Some
        (Pool.create ~workers:par.Options.workers ~share:par.Options.share
           ?cube_depth:par.Options.cube_depth ~tuning:options.Options.sat ())
    else None
  in
  let obs = Obs.global () in
  let since = if Obs.enabled obs then Some (Obs.elapsed obs) else None in
  let incremental = options.Options.incremental in
  let dispatch () =
    match objective with
    | Depth when incremental ->
      `Full (Optimizer.minimize_depth_incremental ~config ~budget ?pool instance)
    | Swaps { warm_start } when incremental ->
      `Full (Optimizer.minimize_swaps_incremental ~config ~budget ?pool ?warm_start instance)
    | Weighted_swaps weights when incremental ->
      `Full (Optimizer.minimize_weighted_swaps_incremental ~config ~budget ?pool ~weights instance)
    | Depth -> `Full (Optimizer.minimize_depth ~config ~budget ?pool instance)
    | Swaps { warm_start } ->
      `Full (Optimizer.minimize_swaps ~config ~budget ?pool ?warm_start instance)
    | Weighted_swaps weights ->
      `Full (Optimizer.minimize_weighted_swaps ~config ~budget ?pool ~weights instance)
    (* TB objectives keep the classic per-block-count encoders: their
       encoding is rebuilt per block bound by construction. *)
    | Tb_blocks -> `Tb (Optimizer.tb_minimize_blocks ~config ~budget ?pool instance)
    | Tb_swaps -> `Tb (Optimizer.tb_minimize_swaps ~config ~budget ?pool instance)
  in
  let engine_outcome = Obs.with_span obs ("synthesis." ^ objective_name objective) dispatch in
  let report =
    match engine_outcome with
    | `Full o -> of_outcome o ~trace:Obs.empty_summary
    | `Tb o -> of_tb_outcome o ~trace:Obs.empty_summary
  in
  let certificate =
    if options.Options.certify then
      certificate_for ~config ~budget:budget.Budget.wall_seconds ~objective
        ~proof_file:options.Options.proof_file report instance
    else None
  in
  let trace = if Obs.enabled obs then Obs.summary ?since obs else Obs.empty_summary in
  { report with trace; certificate }
