(* Unified facade over the Optimizer engine.  Dispatches each objective
   to the corresponding engine loop, converts the engine-specific outcome
   into the shared report, and snapshots the global tracer so the report
   carries the trace summary of exactly this run. *)

module Obs = Olsq2_obs.Obs
module Pool = Olsq2_parallel.Pool

module Options = struct
  type parallel = { workers : int; share : bool; cube_depth : int option }

  type t = {
    config : Config.t;
    simplify : bool option;
    budget : Budget.t;
    certify : bool;
    proof_file : string option;
    parallel : parallel;
  }

  let sequential = { workers = 1; share = true; cube_depth = None }

  (* OLSQ2_WORKERS picks the default worker count so tests and CI can run
     the whole suite parallel without threading a flag through every
     harness. *)
  let default_workers =
    match Sys.getenv_opt "OLSQ2_WORKERS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
    | None -> 1

  let default =
    {
      config = Config.default;
      simplify = None;
      budget = Budget.unlimited;
      certify = false;
      proof_file = None;
      parallel = { sequential with workers = default_workers };
    }

  let with_config config t = { t with config }
  let with_simplify simplify t = { t with simplify = Some simplify }
  let with_budget budget t = { t with budget }
  let with_certify ?(proof_file : string option) certify t = { t with certify; proof_file }

  let with_workers ?share ?cube_depth workers t =
    {
      t with
      parallel =
        {
          workers = max 1 workers;
          share = (match share with Some s -> s | None -> t.parallel.share);
          cube_depth = (match cube_depth with Some _ -> cube_depth | None -> t.parallel.cube_depth);
        };
    }
end

type objective =
  | Depth
  | Swaps of { warm_start : int option }
  | Weighted_swaps of (int -> int)
  | Tb_blocks
  | Tb_swaps

type report = {
  result : Result_.t option;
  optimal : bool;
  iterations : int;
  seconds : float;
  pareto : (int * int) list;
  trace : Obs.summary;
  solver_stats : Olsq2_sat.Solver.stats;
  iter_stats : Optimizer.iter_stat list;
  certificate : Certificate.t option;
}

let objective_name = function
  | Depth -> "depth"
  | Swaps _ -> "swaps"
  | Weighted_swaps _ -> "weighted_swaps"
  | Tb_blocks -> "tb_blocks"
  | Tb_swaps -> "tb_swaps"

let of_outcome (o : Optimizer.outcome) ~trace =
  {
    result = o.Optimizer.result;
    optimal = o.Optimizer.optimal;
    iterations = o.Optimizer.iterations;
    seconds = o.Optimizer.total_seconds;
    pareto = o.Optimizer.pareto;
    trace;
    solver_stats = o.Optimizer.stats;
    iter_stats = o.Optimizer.iter_stats;
    certificate = None;
  }

(* TB outcomes carry the block model; expose it through the unified
   record as the expanded schedule plus a (blocks, swap_count) pareto
   entry so no information is lost. *)
let of_tb_outcome (o : Optimizer.tb_outcome) ~trace =
  let result, pareto =
    match o.Optimizer.tb_result with
    | Some r -> (Some r.Tb_encoder.expanded, [ (r.Tb_encoder.blocks, r.Tb_encoder.swap_count) ])
    | None -> (None, [])
  in
  {
    result;
    optimal = o.Optimizer.tb_optimal;
    iterations = o.Optimizer.tb_iterations;
    seconds = o.Optimizer.tb_seconds;
    pareto;
    trace;
    solver_stats = o.Optimizer.tb_stats;
    iter_stats = o.Optimizer.tb_iter_stats;
    certificate = None;
  }

(* Certificates exist for the objectives with an exact SAT-level bound
   semantics: depth, and swaps-at-fixed-depth.  Weighted and TB objectives
   have no direct CNF bound to refute (weighted counts repeat literals; TB
   optimality is per-block), so they return no certificate. *)
let certificate_for ~config ~budget ~objective ~proof_file (report : report) instance =
  match report.result with
  | None -> None
  | Some res ->
    if not report.optimal then None
    else (
      match objective with
      | Depth ->
        Some
          (Certificate.certify_depth ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth)
      | Swaps _ ->
        Some
          (Certificate.certify_swaps ~config ?budget ?proof_file instance
             ~depth:res.Result_.depth ~swaps:res.Result_.swap_count)
      | Weighted_swaps _ | Tb_blocks | Tb_swaps -> None)

let run ?(options = Options.default) ~objective instance =
  (* [simplify] overrides the config's flag, so callers can toggle
     preprocessing without assembling a Config by hand; the override also
     reaches the certification re-solve below through [config]. *)
  let config =
    match options.Options.simplify with
    | None -> options.Options.config
    | Some b -> { options.Options.config with Config.simplify = b }
  in
  let budget = options.Options.budget in
  let par = options.Options.parallel in
  (* The pool parallelizes single bound queries (cube-and-conquer over
     worker domains); it is created per run and passed down so every
     refinement loop can route its hard queries through it.  Certification
     is untouched: it re-solves on fresh sequential proof-logged encoders,
     and Pool.solve refuses proof-logging masters anyway. *)
  let pool =
    if par.Options.workers > 1 then
      Some
        (Pool.create ~workers:par.Options.workers ~share:par.Options.share
           ?cube_depth:par.Options.cube_depth ())
    else None
  in
  let obs = Obs.global () in
  let since = if Obs.enabled obs then Some (Obs.elapsed obs) else None in
  let dispatch () =
    match objective with
    | Depth -> `Full (Optimizer.minimize_depth ~config ~budget ?pool instance)
    | Swaps { warm_start } ->
      `Full (Optimizer.minimize_swaps ~config ~budget ?pool ?warm_start instance)
    | Weighted_swaps weights ->
      `Full (Optimizer.minimize_weighted_swaps ~config ~budget ?pool ~weights instance)
    | Tb_blocks -> `Tb (Optimizer.tb_minimize_blocks ~config ~budget ?pool instance)
    | Tb_swaps -> `Tb (Optimizer.tb_minimize_swaps ~config ~budget ?pool instance)
  in
  let engine_outcome = Obs.with_span obs ("synthesis." ^ objective_name objective) dispatch in
  let report =
    match engine_outcome with
    | `Full o -> of_outcome o ~trace:Obs.empty_summary
    | `Tb o -> of_tb_outcome o ~trace:Obs.empty_summary
  in
  let certificate =
    if options.Options.certify then
      certificate_for ~config ~budget:budget.Budget.wall_seconds ~objective
        ~proof_file:options.Options.proof_file report instance
    else None
  in
  let trace = if Obs.enabled obs then Obs.summary ?since obs else Obs.empty_summary in
  { report with trace; certificate }

(* Deprecated labelled-argument shim (one release): the former [run]
   signature, delegating to the [Options]-based entry point. *)
let run_labelled ?(config = Config.default) ?simplify ?budget ?(certify = false) ?proof_file
    ~objective instance =
  let options =
    {
      Options.config;
      simplify;
      budget = Budget.of_seconds_opt budget;
      certify;
      proof_file;
      parallel = Options.sequential;
    }
  in
  run ~options ~objective instance
