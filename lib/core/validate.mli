(** Independent checker for the validity conditions of paper §II-A.
    Used on every synthesis path (exact, transition-based, heuristic). *)

type violation =
  | Bad_mapping_range of { time : int; qubit : int; value : int }
  | Not_injective of { time : int; qubit : int; qubit' : int; physical : int }
  | Dependency_violated of { first : int; second : int }
  | Gate_out_of_range of { gate : int; time : int }
  | Not_adjacent of { gate : int; time : int; p : int; p' : int }
  | Swap_bad_window of { edge : int * int; finish : int }
  | Swap_overlaps_gate of { edge : int * int; finish : int; gate : int }
  | Swap_overlaps_swap of { edge : int * int; finish : int; edge' : int * int; finish' : int }
  | Bad_transition of { time : int; qubit : int; expected : int; got : int }
  | Swap_not_an_edge of { edge : int * int }

val violation_to_string : violation -> string

(** All violations found (empty = valid). *)
val check : Instance.t -> Result_.t -> violation list

val is_valid : Instance.t -> Result_.t -> bool

(** Raises [Failure] with a readable message on the first violation. *)
val check_exn : Instance.t -> Result_.t -> unit
