(* A layout-synthesis problem: circuit + coupling graph + SWAP duration.

   SWAP duration follows the paper's evaluation setup: 1 for QAOA circuits
   (native SWAP assumption) and 3 elsewhere (3-CNOT decomposition). *)

module Circuit = Olsq2_circuit.Circuit
module Coupling = Olsq2_device.Coupling
module Dag = Olsq2_circuit.Dag

type t = {
  circuit : Circuit.t;
  device : Coupling.t;
  swap_duration : int;
  dag : Dag.t; (* dependency structure, built once *)
}

let make ?(swap_duration = 3) circuit device =
  if swap_duration < 1 then invalid_arg "Instance.make: swap_duration must be >= 1";
  if circuit.Circuit.num_qubits > device.Coupling.num_qubits then
    invalid_arg
      (Printf.sprintf "Instance.make: %d program qubits exceed %d physical qubits"
         circuit.Circuit.num_qubits device.Coupling.num_qubits);
  if not (Coupling.is_connected device) then
    invalid_arg "Instance.make: coupling graph must be connected";
  { circuit; device; swap_duration; dag = Dag.build circuit }

(* Depth lower bound T_LB: the longest gate dependency chain. *)
let depth_lower_bound t = Dag.longest_chain t.dag

(* Paper's empirical depth upper bound: 1.5 x T_LB (with a little slack for
   tiny circuits so a SWAP can fit at all). *)
let depth_upper_bound t =
  let t_lb = depth_lower_bound t in
  max (int_of_float (ceil (1.5 *. float_of_int t_lb))) (t_lb + t.swap_duration + 1)

let num_qubits t = t.circuit.Circuit.num_qubits
let num_physical t = t.device.Coupling.num_qubits
let num_gates t = Circuit.num_gates t.circuit

let label t =
  Printf.sprintf "%s on %s" (Circuit.label t.circuit) t.device.Coupling.name
