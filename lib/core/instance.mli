(** A layout-synthesis problem instance. *)

module Circuit = Olsq2_circuit.Circuit
module Coupling = Olsq2_device.Coupling
module Dag = Olsq2_circuit.Dag

type t = private {
  circuit : Circuit.t;
  device : Coupling.t;
  swap_duration : int;
  dag : Dag.t;
}

(** [make ?swap_duration circuit device] validates that the circuit fits
    the (connected) device.  [swap_duration] defaults to 3 (3-CNOT SWAP);
    the paper uses 1 for QAOA circuits. *)
val make : ?swap_duration:int -> Circuit.t -> Coupling.t -> t

(** T_LB: longest gate dependency chain. *)
val depth_lower_bound : t -> int

(** The paper's empirical horizon, 1.5 x T_LB (with slack for a SWAP). *)
val depth_upper_bound : t -> int

val num_qubits : t -> int
val num_physical : t -> int
val num_gates : t -> int
val label : t -> string
