(* Transition-based coarse-grained model (paper §III-D, TB-OLSQ2).

   Time is abstracted into *blocks* separated by SWAP transitions: the
   mapping is constant inside a block, dependent gates may share a block
   (ordering inside a block is implicit), and all SWAPs happen between
   blocks.  Eq. 2/3 disappear; the model is dramatically smaller, at the
   price of depth-optimality (SWAP counts remain near-optimal).

   [expand] lowers a block-level model back to a concrete schedule (ASAP
   within each block, parallel SWAP layers between blocks) so the result
   can be checked by the standard validator and compared on equal terms
   with the full model. *)

module F = Olsq2_encode.Formula
module Ctx = Olsq2_encode.Ctx
module Cardinality = Olsq2_encode.Cardinality
module Pb = Olsq2_encode.Pb
module Lit = Olsq2_sat.Lit
module Solver = Olsq2_sat.Solver
module Circuit = Olsq2_circuit.Circuit
module Gate = Olsq2_circuit.Gate
module Dag = Olsq2_circuit.Dag
module Coupling = Olsq2_device.Coupling
module Obs = Olsq2_obs.Obs

type counter = Card of Cardinality.outputs | Adder_net of Pb.t

type t = {
  instance : Instance.t;
  config : Config.t;
  ctx : Ctx.t;
  num_blocks : int;
  pi : Ivar.t array array; (* pi.(q).(b) *)
  time : Ivar.t array; (* block index per gate *)
  sigma : Lit.t array array; (* sigma.(e).(b), b in 0 .. num_blocks-2 *)
  block_selectors : (int, Lit.t) Hashtbl.t;
  mutable counters : (int * counter) list; (* (max expressible bound, counter) *)
}

let solver t = Ctx.solver t.ctx

let sigma_lits t =
  let out = ref [] in
  Array.iteri (fun e row -> Array.iteri (fun b l -> out := (e, b, l) :: !out) row) t.sigma;
  List.rev !out

let assert_injectivity enc =
  let nq = Instance.num_qubits enc.instance in
  let np = Instance.num_physical enc.instance in
  match enc.config.Config.injectivity with
  | Config.Pairwise ->
    for b = 0 to enc.num_blocks - 1 do
      for q = 0 to nq - 1 do
        for q' = q + 1 to nq - 1 do
          Ctx.assert_formula enc.ctx (Ivar.neq enc.pi.(q).(b) enc.pi.(q').(b))
        done
      done
    done
  | Config.Inverse ->
    let pi_inv =
      Array.init np (fun _ ->
          Array.init enc.num_blocks (fun _ ->
              Ivar.fresh enc.ctx enc.config.Config.var_encoding nq))
    in
    for b = 0 to enc.num_blocks - 1 do
      for q = 0 to nq - 1 do
        for p = 0 to np - 1 do
          Ctx.assert_formula enc.ctx
            (F.imply (Ivar.eq_const enc.pi.(q).(b) p) (Ivar.eq_const pi_inv.(p).(b) q))
        done
      done
    done

(* Dependent gates may share a block: non-strict ordering. *)
let assert_dependencies enc =
  List.iter
    (fun (g, g') -> Ctx.assert_formula enc.ctx (Ivar.le enc.time.(g) enc.time.(g')))
    (Dag.dependencies enc.instance.Instance.dag)

let assert_adjacency enc =
  let device = enc.instance.Instance.device in
  let circuit = enc.instance.Instance.circuit in
  Array.iter
    (fun (g : Gate.t) ->
      if Gate.is_two_qubit g then begin
        let q, q' = Gate.pair g in
        for b = 0 to enc.num_blocks - 1 do
          let disjuncts = ref [] in
          Array.iter
            (fun (p, p') ->
              disjuncts :=
                F.and_ [ Ivar.eq_const enc.pi.(q).(b) p; Ivar.eq_const enc.pi.(q').(b) p' ]
                :: F.and_ [ Ivar.eq_const enc.pi.(q).(b) p'; Ivar.eq_const enc.pi.(q').(b) p ]
                :: !disjuncts)
            device.Coupling.edges;
          Ctx.assert_formula enc.ctx
            (F.imply (Ivar.eq_const enc.time.(g.Gate.id) b) (F.or_ !disjuncts))
        done
      end)
    circuit.Circuit.gates

(* Between consecutive blocks the mapping is permuted by the transition's
   SWAP layer; SWAPs in one layer must not share a qubit. *)
let assert_transitions enc =
  let device = enc.instance.Instance.device in
  let nq = Instance.num_qubits enc.instance in
  let np = Instance.num_physical enc.instance in
  for b = 0 to enc.num_blocks - 2 do
    for q = 0 to nq - 1 do
      for p = 0 to np - 1 do
        let here = Ivar.eq_const enc.pi.(q).(b) p in
        let incident = Coupling.incident_edges device p in
        let no_swap = F.and_ (List.map (fun e -> F.Not (F.Atom enc.sigma.(e).(b))) incident) in
        Ctx.assert_formula enc.ctx
          (F.imply (F.and_ [ here; no_swap ]) (Ivar.eq_const enc.pi.(q).(b + 1) p));
        List.iter
          (fun e ->
            let pa, pb = Coupling.edge device e in
            let other = if pa = p then pb else pa in
            Ctx.assert_formula enc.ctx
              (F.imply
                 (F.and_ [ F.Atom enc.sigma.(e).(b); here ])
                 (Ivar.eq_const enc.pi.(q).(b + 1) other)))
          incident
      done
    done;
    (* matching constraint within one transition layer *)
    let ne = Coupling.num_edges device in
    for e = 0 to ne - 1 do
      for e' = e + 1 to ne - 1 do
        let a, b' = Coupling.edge device e and c, d = Coupling.edge device e' in
        if a = c || a = d || b' = c || b' = d then
          Ctx.add_clause enc.ctx [ Lit.negate enc.sigma.(e).(b); Lit.negate enc.sigma.(e').(b) ]
      done
    done
  done

let build_raw ?(config = Config.default) instance ~num_blocks =
  if num_blocks < 1 then invalid_arg "Tb_encoder.build: need at least one block";
  let ctx = Ctx.create () in
  let nq = Instance.num_qubits instance in
  let ne = Coupling.num_edges instance.Instance.device in
  let ng = Instance.num_gates instance in
  let enc_kind = config.Config.var_encoding in
  let pi =
    Array.init nq (fun _ ->
        Array.init num_blocks (fun _ -> Ivar.fresh ctx enc_kind (Instance.num_physical instance)))
  in
  let time = Array.init ng (fun _ -> Ivar.fresh ctx enc_kind num_blocks) in
  let sigma =
    Array.init ne (fun _ -> Array.init (max 0 (num_blocks - 1)) (fun _ -> Ctx.fresh_var ctx))
  in
  let enc =
    { instance; config; ctx; num_blocks; pi; time; sigma; block_selectors = Hashtbl.create 8; counters = [] }
  in
  assert_injectivity enc;
  assert_dependencies enc;
  assert_adjacency enc;
  assert_transitions enc;
  enc

(* One span per block-model build with its clause/variable counts (the
   §III-D size advantage shows up directly in traces). *)
let build ?config instance ~num_blocks =
  let obs = Obs.global () in
  if not (Obs.enabled obs) then build_raw ?config instance ~num_blocks
  else begin
    let sp = Obs.begin_span obs "tb.build" ~attrs:[ ("blocks", Obs.Int num_blocks) ] in
    let enc = build_raw ?config instance ~num_blocks in
    let s = solver enc in
    Obs.end_span obs sp
      ~attrs:
        [
          ("config", Obs.Str (Config.name enc.config));
          ("vars", Obs.Int (Solver.nvars s));
          ("clauses", Obs.Int (Solver.n_clauses s));
        ];
    enc
  end

(* Pin the first block's mapping (used by chunked baselines such as the
   SATMap-style slicer, where each chunk inherits the previous chunk's
   final mapping). *)
let fix_initial_mapping enc m =
  if Array.length m <> Instance.num_qubits enc.instance then
    invalid_arg "Tb_encoder.fix_initial_mapping: wrong arity";
  Array.iteri (fun q p -> Ctx.assert_formula enc.ctx (Ivar.eq_const enc.pi.(q).(0) p)) m

(* Selector enforcing "at most [b] blocks": gates in blocks < b, and no
   SWAP layer at or after transition b-1. *)
let block_selector enc b =
  match Hashtbl.find_opt enc.block_selectors b with
  | Some l -> l
  | None ->
    let l = Ctx.fresh enc.ctx in
    Array.iter (fun tv -> Ctx.assert_implied enc.ctx ~guard:l (Ivar.le_const tv (b - 1))) enc.time;
    List.iter
      (fun (_, bt, sl) -> if bt >= b - 1 then Ctx.add_clause enc.ctx [ Lit.negate l; Lit.negate sl ])
      (sigma_lits enc);
    Hashtbl.add enc.block_selectors b l;
    l

let counter_capacity inputs = function
  | Card out -> Array.length out.Cardinality.count_ge - 1
  | Adder_net _ -> inputs

(* Build (or widen) the SWAP counter so bounds up to [max_bound] are
   expressible. *)
let build_counter enc ~max_bound =
  let lits = Array.of_list (List.map (fun (_, _, l) -> l) (sigma_lits enc)) in
  let n = Array.length lits in
  let wanted = min max_bound n in
  if not (List.exists (fun (cap, _) -> cap >= wanted) enc.counters) then begin
    let obs = Obs.global () in
    let v0, c0 =
      if Obs.enabled obs then (Solver.nvars (solver enc), Solver.n_clauses (solver enc))
      else (0, 0)
    in
    let counter =
      match enc.config.Config.cardinality with
      | Config.Seq_counter ->
        Card (Cardinality.sequential_counter ~width:(min n (wanted + 1)) enc.ctx lits)
      | Config.Totalizer -> Card (Cardinality.totalizer enc.ctx lits)
      | Config.Adder -> Adder_net (Pb.adder_network enc.ctx lits)
    in
    enc.counters <- (counter_capacity n counter, counter) :: enc.counters;
    if Obs.enabled obs then
      Obs.instant obs "tb.counter"
        ~attrs:
          [
            ("max_bound", Obs.Int wanted);
            ("inputs", Obs.Int n);
            ("vars_added", Obs.Int (Solver.nvars (solver enc) - v0));
            ("clauses_added", Obs.Int (Solver.n_clauses (solver enc) - c0));
          ]
  end

let swap_bound_assumption enc k =
  if enc.counters = [] then invalid_arg "Tb_encoder.swap_bound_assumption: counter not built";
  let try_counter (cap, counter) =
    if cap < k then None
    else
      match counter with
      | Card out -> Cardinality.at_most_assumption out k
      | Adder_net net -> Some (Pb.at_most_assumption enc.ctx net k)
  in
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) enc.counters in
  List.find_map try_counter ordered

(* Lazy-integer configurations route through the theory CEGAR loop. *)
let pool_capable enc =
  match enc.config.Config.var_encoding with
  | Config.Lazy_int -> false
  | Config.Onehot | Config.Binary -> true

let solve ?(assumptions = []) ?max_conflicts ?timeout enc =
  match enc.config.Config.var_encoding with
  | Config.Lazy_int ->
    Theory_int.solve ~assumptions ?max_conflicts ?timeout (Theory_int.of_ctx enc.ctx)
  | Config.Onehot | Config.Binary ->
    Solver.solve ~assumptions ?max_conflicts ?timeout (solver enc)

let model_swap_count enc =
  List.length (List.filter (fun (_, _, l) -> Solver.model_value (solver enc) l) (sigma_lits enc))

(* ---- expansion back to a concrete schedule ---- *)

type block_model = {
  used_blocks : int;
  gate_block : int array;
  block_mapping : int array array; (* block_mapping.(b).(q) = p *)
  layer_swaps : (int * int) list array; (* swaps of transition b (edges) *)
}

let read_block_model enc =
  let s = solver enc in
  let ng = Instance.num_gates enc.instance in
  let nq = Instance.num_qubits enc.instance in
  let gate_block = Array.init ng (fun g -> Ivar.value s enc.time.(g)) in
  let used_blocks = 1 + Array.fold_left max 0 gate_block in
  let block_mapping =
    Array.init used_blocks (fun b -> Array.init nq (fun q -> Ivar.value s enc.pi.(q).(b)))
  in
  let layer_swaps =
    Array.init
      (max 0 (used_blocks - 1))
      (fun b ->
        List.filter_map
          (fun (e, bt, l) ->
            if bt = b && Solver.model_value s l then
              Some (Coupling.edge enc.instance.Instance.device e)
            else None)
          (sigma_lits enc))
  in
  { used_blocks; gate_block; block_mapping; layer_swaps }

(* ASAP-schedule each block's gates, then append the transition's SWAP
   layer; produces a full Result_.t the standard validator accepts. *)
let expand instance (bm : block_model) ~status ~solve_seconds ~iterations =
  let circuit = instance.Instance.circuit in
  let nq = Instance.num_qubits instance in
  let sd = instance.Instance.swap_duration in
  let ng = Circuit.num_gates circuit in
  let schedule = Array.make ng 0 in
  let swaps = ref [] in
  let mapping_rows = ref [] in
  (* append one time step with the block's mapping *)
  let push_step m = mapping_rows := m :: !mapping_rows in
  let now = ref 0 in
  for b = 0 to bm.used_blocks - 1 do
    let block_map = bm.block_mapping.(b) in
    (* ASAP inside the block: ready time per program qubit *)
    let ready = Array.make nq !now in
    let block_end = ref !now in
    Array.iter
      (fun (g : Gate.t) ->
        if bm.gate_block.(g.Gate.id) = b then begin
          let qs = Gate.qubits g in
          let start = List.fold_left (fun acc q -> max acc ready.(q)) !now qs in
          schedule.(g.Gate.id) <- start;
          List.iter (fun q -> ready.(q) <- start + 1) qs;
          block_end := max !block_end (start + 1)
        end)
      circuit.Circuit.gates;
    (* a block occupies at least one step so the mapping row exists *)
    let block_end = max !block_end (!now + 1) in
    for _ = !now to block_end - 1 do
      push_step (Array.copy block_map)
    done;
    now := block_end;
    (* transition SWAP layer *)
    if b < bm.used_blocks - 1 then begin
      let layer = bm.layer_swaps.(b) in
      if layer <> [] then begin
        let finish = !now + sd - 1 in
        List.iter (fun e -> swaps := { Result_.sw_edge = e; sw_finish = finish } :: !swaps) layer;
        for _ = !now to finish do
          push_step (Array.copy block_map)
        done;
        now := finish + 1
      end
    end
  done;
  let mapping = Array.of_list (List.rev !mapping_rows) in
  {
    Result_.status;
    depth = !now;
    swap_count = List.length !swaps;
    mapping;
    schedule;
    swaps = List.rev !swaps;
    solve_seconds;
    iterations;
  }

type result = {
  blocks : int;
  swap_count : int;
  expanded : Result_.t;
}

let extract ?(status = Result_.Feasible) ?(solve_seconds = 0.0) ?(iterations = 1) enc =
  let bm = read_block_model enc in
  let expanded = expand enc.instance bm ~status ~solve_seconds ~iterations in
  { blocks = bm.used_blocks; swap_count = expanded.Result_.swap_count; expanded }

let size_report enc =
  let s = solver enc in
  (Solver.nvars s, Solver.n_clauses s)
