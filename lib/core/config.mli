(** Formulation and encoding configuration (paper Improvements 1 and 3).

    The six configurations of Table I and the cardinality arms of Table II
    are points in this space; see DESIGN.md §2 for how the paper's
    integer/EUF encodings map onto the one-hot/inverse-channel stand-ins. *)

type formulation =
  | Olsq  (** original formulation with redundant space variables *)
  | Olsq2  (** succinct formulation (Improvement 1) *)

type var_encoding =
  | Lazy_int
      (** lazy integer theory (CEGAR over free atoms): the stand-in for
          the paper's integer-variable arm / Z3's arithmetic path *)
  | Onehot  (** direct one-hot encoding (extra ablation arm) *)
  | Binary  (** bit-vector encoding (bit-blasting arm) *)

type injectivity =
  | Pairwise  (** pairwise mapping disequalities per time step *)
  | Inverse  (** inverse mapping function channel (the EUF trick) *)

type cardinality =
  | Seq_counter  (** Sinz sequential counter in CNF (the paper's choice) *)
  | Totalizer  (** unary merge tree (extra ablation arm) *)
  | Adder  (** binary adder network (the "AtMost"/pseudo-Boolean arm) *)

type t = {
  formulation : formulation;
  var_encoding : var_encoding;
  injectivity : injectivity;
  cardinality : cardinality;
  simplify : bool;
      (** run SatELite-style preprocessing (subsumption, strengthening,
          bounded variable elimination) on the encoded CNF before search,
          plus restart-time inprocessing — {!Olsq2_simplify.Simplify}.
          Ignored by the [Lazy_int] arm, whose clause set grows through
          CEGAR refinement.  Default [false]. *)
  symmetry : bool;
      (** break coupling-graph symmetry by restricting the first
          two-qubit gate to automorphism-orbit representative edges
          ({!Olsq2_device.Symmetry.edge_orbits}).  Optimality-preserving
          for depth and SWAP-count objectives; NOT sound for
          weighted-SWAP objectives (distinct orbit members can carry
          different weights), so weighted callers must disable it.
          Default [false]. *)
}

(** OLSQ2(bv) with CNF cardinality: the paper's best configuration. *)
val default : t

val olsq_int : t
val olsq_bv : t
val olsq2_int : t
val olsq2_euf_int : t
val olsq2_euf_bv : t
val olsq2_bv : t

(** Paper-style display name, e.g. ["OLSQ2(EUF+bv)"]. *)
val name : t -> string

val cardinality_name : cardinality -> string

(** Stable key/value rendering of every field (for benchmark-report and
    metrics serialization). *)
val to_assoc : t -> (string * string) list

(** Inverse of {!to_assoc}: missing keys take {!default}'s value, unknown
    keys are ignored, unknown values are an [Error].  Round trip:
    [of_assoc (to_assoc c) = Ok c]. *)
val of_assoc : (string * string) list -> (t, string) result

(** The six Table I configurations, in the paper's column order. *)
val table1_configs : t list
