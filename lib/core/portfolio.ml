(* Parallel portfolio synthesis (paper §V, future direction implemented):
   "support parallel layout synthesis by solving multiple instances
   simultaneously ... a portfolio of instances by generating
   configurations for a wide range of objective bounds [and] different
   encoding methods".

   Each arm (a formulation/encoding/model choice) runs the full
   optimization loop in its own OCaml 5 domain on an independent encoder
   and solver; the best valid result wins.  Per-arm outcomes are reported
   so the harness can show portfolio latency (min over arms) next to
   single-arm latency. *)

type objective = Depth | Swaps

type arm = {
  arm_name : string;
  arm_config : Config.t;
  arm_model : [ `Full | `Transition ];
}

(* A preprocessed olsq2-bv arm races the raw one in both portfolios: on
   dense instances the clause reduction wins, on tiny ones the
   preprocessing overhead loses, and the portfolio keeps whichever
   finishes first (Simplify's totals stay correct across domains). *)
let olsq2_bv_simp =
  { arm_name = "olsq2-bv-simp"; arm_config = { Config.olsq2_bv with Config.simplify = true }; arm_model = `Full }

let default_arms = function
  | Depth ->
    [
      { arm_name = "olsq2-bv"; arm_config = Config.olsq2_bv; arm_model = `Full };
      olsq2_bv_simp;
      { arm_name = "olsq2-euf-bv"; arm_config = Config.olsq2_euf_bv; arm_model = `Full };
      {
        arm_name = "olsq2-direct";
        arm_config = { Config.olsq2_bv with Config.var_encoding = Config.Onehot };
        arm_model = `Full;
      };
    ]
  | Swaps ->
    [
      { arm_name = "olsq2-bv"; arm_config = Config.olsq2_bv; arm_model = `Full };
      olsq2_bv_simp;
      {
        arm_name = "olsq2-bv-totalizer";
        arm_config = { Config.olsq2_bv with Config.cardinality = Config.Totalizer };
        arm_model = `Full;
      };
      { arm_name = "tb-olsq2"; arm_config = Config.olsq2_bv; arm_model = `Transition };
    ]

type arm_outcome = {
  arm : arm;
  seconds : float;
  result : Result_.t option;
  blocks : int option; (* transition arms only *)
  optimal : bool;
  arm_stats : Olsq2_sat.Solver.stats; (* aggregate effort, collected in the arm's domain *)
}

type report = {
  winner : arm_outcome option;
  arms : arm_outcome list;
  certificate : Certificate.t option;
}

module Obs = Olsq2_obs.Obs
module Share = Olsq2_parallel.Share

let run_arm objective budget instance arm =
  let obs = Obs.global () in
  let sp =
    Obs.begin_span obs "portfolio.arm"
      ~attrs:
        [
          ("arm", Obs.Str arm.arm_name);
          ("model", Obs.Str (match arm.arm_model with `Full -> "full" | `Transition -> "transition"));
        ]
  in
  let clock = Olsq2_util.Stopwatch.start () in
  let result, blocks, optimal, arm_stats =
    match (arm.arm_model, objective) with
    | `Full, Depth ->
      let o = Optimizer.minimize_depth ~config:arm.arm_config ~budget instance in
      (o.Optimizer.result, None, o.Optimizer.optimal, o.Optimizer.stats)
    | `Full, Swaps ->
      let o = Optimizer.minimize_swaps ~config:arm.arm_config ~budget instance in
      (o.Optimizer.result, None, o.Optimizer.optimal, o.Optimizer.stats)
    | `Transition, Depth ->
      let o = Optimizer.tb_minimize_blocks ~config:arm.arm_config ~budget instance in
      (match o.Optimizer.tb_result with
      | Some r ->
        (Some r.Tb_encoder.expanded, Some r.Tb_encoder.blocks, o.Optimizer.tb_optimal, o.Optimizer.tb_stats)
      | None -> (None, None, false, o.Optimizer.tb_stats))
    | `Transition, Swaps ->
      let o = Optimizer.tb_minimize_swaps ~config:arm.arm_config ~budget instance in
      (match o.Optimizer.tb_result with
      | Some r ->
        (Some r.Tb_encoder.expanded, Some r.Tb_encoder.blocks, o.Optimizer.tb_optimal, o.Optimizer.tb_stats)
      | None -> (None, None, false, o.Optimizer.tb_stats))
  in
  (* never hand back an invalid model from a racing arm *)
  let result =
    match result with
    | Some r when Validate.is_valid instance r -> Some r
    | Some _ | None -> None
  in
  Obs.end_span obs sp
    ~attrs:
      [
        ("solved", Obs.Bool (result <> None));
        ("optimal", Obs.Bool optimal);
        ("conflicts", Obs.Int arm_stats.Olsq2_sat.Solver.conflicts);
        ( "objective_value",
          Obs.Int
            (match result with
            | None -> -1
            | Some r -> (
              match objective with Depth -> r.Result_.depth | Swaps -> r.Result_.swap_count)) );
      ];
  { arm; seconds = Olsq2_util.Stopwatch.elapsed clock; result; blocks; optimal; arm_stats }

(* Smaller objective value wins; ties break on proven optimality, then
   wall-clock. *)
let better objective a b =
  match (a.result, b.result) with
  | None, None -> a
  | Some _, None -> a
  | None, Some _ -> b
  | Some ra, Some rb ->
    let key r = match objective with Depth -> r.Result_.depth | Swaps -> r.Result_.swap_count in
    let ka = key ra and kb = key rb in
    if ka < kb then a
    else if kb < ka then b
    else if a.optimal && not b.optimal then a
    else if b.optimal && not a.optimal then b
    else if a.seconds <= b.seconds then a
    else b

(* Certify the winning arm's claim on a fresh proof-logged solve: arms
   race with arbitrary encodings, so the certificate is rebuilt from
   scratch rather than salvaged from any arm's solver state.  Only full
   (time-resolved) winners that proved optimality are certifiable; a
   transition-based winner's expanded schedule carries no exact-optimality
   claim. *)
let certify_winner ~budget ~proof_file objective (w : arm_outcome) instance =
  let budget_seconds = budget.Budget.wall_seconds in
  match w.result with
  | None -> None
  | Some r ->
    if (not w.optimal) || w.arm.arm_model <> `Full then None
    else (
      match objective with
      | Depth ->
        Some
          (Certificate.certify_depth ~config:w.arm.arm_config ?budget:budget_seconds ?proof_file
             instance ~depth:r.Result_.depth)
      | Swaps ->
        Some
          (Certificate.certify_swaps ~config:w.arm.arm_config ?budget:budget_seconds ?proof_file
             instance ~depth:r.Result_.depth ~swaps:r.Result_.swap_count))

let run ?(budget = Budget.unlimited) ?arms ?(certify = false) ?proof_file ?(share = false)
    objective instance =
  let arms = match arms with Some a -> a | None -> default_arms objective in
  (* transition arms make no sense for exact depth; caller-supplied arms
     are trusted *)
  (* learnt-clause sharing between arms: while the hub is active, every
     non-proof-logged encoder built (in any arm's domain) attaches to the
     channel matching its CNF fingerprint, so arms that share a base
     encoding (e.g. olsq2-bv vs olsq2-bv-totalizer: counters are built
     lazily, after attach) exchange short learnts.  Deactivated before
     certification so the fresh proof-logged re-solve never imports. *)
  if share then Share.hub_activate ();
  let outcomes =
    Fun.protect
      ~finally:(fun () -> if share then Share.hub_deactivate ())
      (fun () ->
        let domains =
          List.map
            (fun arm -> Domain.spawn (fun () -> run_arm objective budget instance arm))
            arms
        in
        List.map Domain.join domains)
  in
  let winner =
    match outcomes with
    | [] -> None
    | first :: rest -> (
      let best = List.fold_left (better objective) first rest in
      match best.result with Some _ -> Some best | None -> None)
  in
  (* winner attribution: which arm the portfolio would have been *)
  (match winner with
  | Some w ->
    Obs.instant (Obs.global ()) "portfolio.winner"
      ~attrs:[ ("arm", Obs.Str w.arm.arm_name); ("seconds", Obs.Float w.seconds) ]
  | None -> ());
  let certificate =
    match winner with
    | Some w when certify -> certify_winner ~budget ~proof_file objective w instance
    | Some _ | None -> None
  in
  { winner; arms = outcomes; certificate }
