(* Encoding and formulation configuration.

   The six configurations of the paper's Table I and the cardinality arms
   of Table II are points in this space:

     OLSQ(int)       = { formulation = Olsq;  var_encoding = Onehot; Pairwise }
     OLSQ(bv)        = { formulation = Olsq;  var_encoding = Binary; Pairwise }
     OLSQ2(int)      = { formulation = Olsq2; var_encoding = Onehot; Pairwise }
     OLSQ2(EUF+int)  = { formulation = Olsq2; var_encoding = Onehot; Inverse }
     OLSQ2(EUF+bv)   = { formulation = Olsq2; var_encoding = Binary; Inverse }
     OLSQ2(bv)       = { formulation = Olsq2; var_encoding = Binary; Pairwise }

   (the paper's EUF injectivity trick maps to the inverse-function channel;
   the integer arm maps to the one-hot lowering -- DESIGN.md §2). *)

type formulation =
  | Olsq (* original formulation with redundant space variables *)
  | Olsq2 (* succinct formulation, Improvement 1 *)

type var_encoding =
  | Lazy_int (* lazy integer theory: stands in for Z3's arithmetic path *)
  | Onehot (* direct one-hot encoding; extra ablation arm *)
  | Binary (* bit-vector encoding *)

type injectivity =
  | Pairwise (* pairwise disequalities per time step *)
  | Inverse (* inverse mapping function channel (the EUF trick) *)

type cardinality =
  | Seq_counter (* Sinz sequential counter in CNF (the paper's choice) *)
  | Totalizer (* unary merge tree; extra ablation arm *)
  | Adder (* binary adder network: the "AtMost"/pseudo-Boolean arm *)

type t = {
  formulation : formulation;
  var_encoding : var_encoding;
  injectivity : injectivity;
  cardinality : cardinality;
  simplify : bool;
      (* SatELite-style preprocessing + restart-time inprocessing of the
         CNF (lib/simplify); ignored by the Lazy_int arm, whose clause set
         grows through CEGAR refinement *)
  symmetry : bool;
      (* coupling-graph symmetry breaking: restrict the first two-qubit
         gate to automorphism-orbit representative edges (lib/device
         Symmetry).  Optimality-preserving for depth and SWAP count,
         unsound for weighted-SWAP objectives -- those callers must
         disable it. *)
}

let default =
  {
    formulation = Olsq2;
    var_encoding = Binary;
    injectivity = Pairwise;
    cardinality = Seq_counter;
    simplify = false;
    symmetry = false;
  }

let olsq_int = { default with formulation = Olsq; var_encoding = Lazy_int }

let olsq_bv = { olsq_int with var_encoding = Binary }
let olsq2_int = { olsq_int with formulation = Olsq2 }
let olsq2_euf_int = { olsq2_int with injectivity = Inverse }
let olsq2_euf_bv = { olsq2_euf_int with var_encoding = Binary }
let olsq2_bv = default

let name c =
  let base = match c.formulation with Olsq -> "OLSQ" | Olsq2 -> "OLSQ2" in
  let enc =
    match (c.injectivity, c.var_encoding) with
    | Pairwise, Lazy_int -> "int"
    | Pairwise, Onehot -> "direct"
    | Pairwise, Binary -> "bv"
    | Inverse, Lazy_int -> "EUF+int"
    | Inverse, Onehot -> "EUF+direct"
    | Inverse, Binary -> "EUF+bv"
  in
  Printf.sprintf "%s(%s)" base enc

let cardinality_name = function
  | Seq_counter -> "CNF"
  | Totalizer -> "totalizer"
  | Adder -> "AtMost"

let to_assoc c =
  [
    ("formulation", (match c.formulation with Olsq -> "olsq" | Olsq2 -> "olsq2"));
    ( "var_encoding",
      match c.var_encoding with Lazy_int -> "lazy_int" | Onehot -> "onehot" | Binary -> "binary"
    );
    ("injectivity", (match c.injectivity with Pairwise -> "pairwise" | Inverse -> "inverse"));
    ( "cardinality",
      match c.cardinality with
      | Seq_counter -> "seq_counter"
      | Totalizer -> "totalizer"
      | Adder -> "adder" );
    ("simplify", string_of_bool c.simplify);
    ("symmetry", string_of_bool c.symmetry);
  ]

(* Inverse of [to_assoc].  Missing keys take [default]'s value, so a wire
   request can override just the fields it cares about; unknown keys are
   ignored (forward compatibility), unknown values are an error. *)
let of_assoc assoc =
  let field name ~of_string ~default =
    match List.assoc_opt name assoc with
    | None -> Ok default
    | Some s -> (
      match of_string s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "%s: unknown value %S" name s))
  in
  let ( let* ) r f = Result.bind r f in
  let* formulation =
    field "formulation" ~default:default.formulation ~of_string:(function
      | "olsq" -> Some Olsq
      | "olsq2" -> Some Olsq2
      | _ -> None)
  in
  let* var_encoding =
    field "var_encoding" ~default:default.var_encoding ~of_string:(function
      | "lazy_int" -> Some Lazy_int
      | "onehot" -> Some Onehot
      | "binary" -> Some Binary
      | _ -> None)
  in
  let* injectivity =
    field "injectivity" ~default:default.injectivity ~of_string:(function
      | "pairwise" -> Some Pairwise
      | "inverse" -> Some Inverse
      | _ -> None)
  in
  let* cardinality =
    field "cardinality" ~default:default.cardinality ~of_string:(function
      | "seq_counter" -> Some Seq_counter
      | "totalizer" -> Some Totalizer
      | "adder" -> Some Adder
      | _ -> None)
  in
  let* simplify =
    field "simplify" ~default:default.simplify ~of_string:bool_of_string_opt
  in
  let* symmetry =
    field "symmetry" ~default:default.symmetry ~of_string:bool_of_string_opt
  in
  Ok { formulation; var_encoding; injectivity; cardinality; simplify; symmetry }

let table1_configs =
  [ olsq_int; olsq_bv; olsq2_int; olsq2_euf_int; olsq2_euf_bv; olsq2_bv ]
