(** Lazy integer theory (offline DPLL(T) / CEGAR): the stand-in for the
    paper's integer-variable configurations, modelling Z3's arithmetic
    path.  Atoms "x = c" / "x <= c" are free Boolean literals whose
    integer semantics is enforced by theory lemmas added after each SAT
    answer. *)

module Ctx = Olsq2_encode.Ctx
module Formula = Olsq2_encode.Formula
module Lit = Olsq2_sat.Lit
module Solver = Olsq2_sat.Solver

type t
type ivar

(** Registry of lazy variables for an encoding context (one per context,
    created on first use). *)
val of_ctx : Ctx.t -> t

val new_var : t -> domain:int -> ivar
val domain : ivar -> int

(** Atom literals created so far (for branching hints). *)
val atom_lits : ivar -> Lit.t list
val eq_const : ivar -> int -> Formula.t
val le_const : ivar -> int -> Formula.t
val eq_var : ivar -> ivar -> Formula.t
val lt_var : ivar -> ivar -> Formula.t

(** CEGAR loop: SAT-solve, theory-check every variable, add lemmas for
    inconsistencies, repeat.  Returns [Sat] only for theory-consistent
    models. *)
val solve : ?assumptions:Lit.t list -> ?max_conflicts:int -> ?timeout:float -> t -> Solver.result

(** Value of a variable in the (theory-consistent) model. *)
val value : Solver.t -> ivar -> int

(** (theory rounds, lemmas added). *)
val stats : t -> int * int
