(** Bounded-integer variables abstracting over the one-hot ("integer")
    and binary ("bit-vector") encodings of paper Improvement 3. *)

module Formula = Olsq2_encode.Formula
module Ctx = Olsq2_encode.Ctx

type t

(** Fresh variable over domain [0 .. domain-1]; the one-hot form carries
    its at-least-one / at-most-one axioms, the binary form its domain
    restriction. *)
val fresh : Ctx.t -> Config.var_encoding -> int -> t

val domain : t -> int
val eq_const : t -> int -> Formula.t
val neq_const : t -> int -> Formula.t

(** Equality of two same-encoding variables; raises on mixed encodings. *)
val eq : t -> t -> Formula.t

val neq : t -> t -> Formula.t
val le_const : t -> int -> Formula.t
val lt_const : t -> int -> Formula.t
val ge_const : t -> int -> Formula.t
val lt : t -> t -> Formula.t
val le : t -> t -> Formula.t

(** Decode from the last model. *)
val value : Olsq2_sat.Solver.t -> t -> int

(** Underlying Boolean literals (for solver branching hints). *)
val literals : t -> Olsq2_sat.Lit.t list
