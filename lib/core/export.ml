(* Lowering a synthesis result to an executable physical circuit.

   The output circuit acts on *physical* qubits: each original gate is
   re-targeted through the mapping at its scheduled time, and SWAP gates
   are inserted at their window positions.  Emitting this through
   [Olsq2_circuit.Qasm] gives a hardware-conformant OpenQASM program. *)

module Circuit = Olsq2_circuit.Circuit
module Gate = Olsq2_circuit.Gate

(* Gates and swaps merged in time order.  Within a time step, original
   program order is kept (irrelevant for disjoint qubits). *)
let physical_circuit (instance : Instance.t) (r : Result_.t) =
  let circuit = instance.Instance.circuit in
  let sd = instance.Instance.swap_duration in
  let events =
    let gates =
      Array.to_list circuit.Circuit.gates
      |> List.map (fun (g : Gate.t) -> (r.Result_.schedule.(g.Gate.id), `Gate g))
    in
    let swaps =
      List.map
        (fun (sw : Result_.swap) -> (sw.Result_.sw_finish - sd + 1, `Swap sw))
        r.Result_.swaps
    in
    List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2) (gates @ swaps)
  in
  let b = Circuit.builder instance.Instance.device.Olsq2_device.Coupling.num_qubits in
  List.iter
    (fun (_start, ev) ->
      match ev with
      | `Gate (g : Gate.t) ->
        let phys q = r.Result_.mapping.(r.Result_.schedule.(g.Gate.id)).(q) in
        (match g.Gate.operands with
        | Gate.One q -> Circuit.add_gate b ~name:g.Gate.name ?param:g.Gate.param (Gate.One (phys q))
        | Gate.Two (q, q') ->
          Circuit.add_gate b ~name:g.Gate.name ?param:g.Gate.param (Gate.Two (phys q, phys q')))
      | `Swap sw ->
        let p, p' = sw.Result_.sw_edge in
        Circuit.add2 b "swap" p p')
    events;
  Circuit.build b ~name:(circuit.Circuit.name ^ "_mapped")

(* Human-readable synthesis report. *)
let report (instance : Instance.t) (r : Result_.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "instance: %s\nstatus: %s\ndepth: %d\nswaps: %d\nsolve time: %.2fs (%d solver calls)\n"
       (Instance.label instance) (Result_.status_string r.Result_.status) r.Result_.depth
       r.Result_.swap_count r.Result_.solve_seconds r.Result_.iterations);
  Buffer.add_string buf "initial mapping:";
  Array.iteri (fun q p -> Buffer.add_string buf (Printf.sprintf " q%d->p%d" q p)) (Result_.initial_mapping r);
  Buffer.add_char buf '\n';
  List.iter
    (fun (sw : Result_.swap) ->
      let p, p' = sw.Result_.sw_edge in
      Buffer.add_string buf (Printf.sprintf "swap (p%d,p%d) finishing at t=%d\n" p p' sw.Result_.sw_finish))
    r.Result_.swaps;
  Buffer.contents buf
