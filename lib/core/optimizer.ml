(* Optimization strategies (paper §III-B).

   Instead of a built-in optimizing solver, OLSQ2 iteratively re-solves
   under objective-bound assumptions:

   - Depth: start at the lower bound T_LB; on UNSAT grow the bound
     geometrically (x1.3 below 100, x1.1 above); after the first SAT,
     descend by 1 until UNSAT.  If the horizon T_UB is exhausted, rebuild
     the encoding with a larger horizon.
   - SWAP count: start from a depth-optimal solution, then iteratively
     *descend* the SWAP bound (monotone solution structure: each SAT
     model's count seeds the next, tighter bound).  Then relax the depth
     bound and repeat, sweeping the (depth, SWAP) Pareto frontier, until
     no improvement or the time budget runs out.

   All bounds are solver assumptions over selector literals, so learnt
   clauses survive between iterations (incremental solving). *)

module Lit = Olsq2_sat.Lit
module Solver = Olsq2_sat.Solver
module Stopwatch = Olsq2_util.Stopwatch
module Obs = Olsq2_obs.Obs
module Pool = Olsq2_parallel.Pool

(* ---- per-iteration statistics collection ---- *)

type iter_stat = {
  iter_phase : string;
  iter_bound : int;
  iter_verdict : string;
  iter_seconds : float;
  iter_stats : Solver.stats;
}

(* Each domain collects its own iteration records (portfolio arms run
   concurrently), so collection needs no locks: a per-domain collector is
   armed by the entry point running in that domain.  Entry points nest
   (minimize_swaps starts with the depth loop), hence the
   physical-equality prefix walk in [collecting] instead of a flat
   reset. *)
type collector = {
  mutable active : bool;
  mutable iters : iter_stat list; (* newest first *)
  mutable agg : Solver.stats;
}

let collector_key =
  Domain.DLS.new_key (fun () -> { active = false; iters = []; agg = Solver.stats_zero () })

let collector () = Domain.DLS.get collector_key

(* Run an optimization entry point with iteration collection armed;
   returns [f]'s result plus the iterations recorded during [f] (oldest
   first) and their aggregate solver stats.  A nested entry point keeps
   the outer collection running and still carves out its own slice. *)
let collecting f =
  let col = collector () in
  let was_active = col.active in
  if not was_active then begin
    col.iters <- [];
    col.agg <- Solver.stats_zero ()
  end;
  col.active <- true;
  let iters0 = col.iters in
  let agg0 = Solver.stats_copy col.agg in
  Fun.protect
    ~finally:(fun () -> col.active <- was_active)
    (fun () ->
      let r = f () in
      let rec fresh acc = function
        | l when l == iters0 -> acc
        | [] -> acc
        | x :: tl -> fresh (x :: acc) tl
      in
      (r, fresh [] col.iters, Solver.stats_diff ~after:col.agg ~before:agg0))

(* ---- live progress ---- *)

type progress = {
  prog_phase : string;
  prog_bound : int;
  prog_conflicts : int;
  prog_learnts : int;
  prog_propagations : int;
}

(* Process-wide progress sink (mirrors the ambient tracer): the CLI
   installs one callback; every bound iteration forwards the solver's
   rate-limited progress events to it, labelled with the phase and bound
   being attempted.  Atomic because portfolio arms race in separate
   domains; the callback must be domain-safe. *)
let progress_sink : ((progress -> unit) option * int) Atomic.t = Atomic.make (None, 2000)

let set_progress_sink ?(interval = 2000) cb = Atomic.set progress_sink (cb, interval)

(* One span per bound iteration: the per-iteration telemetry the paper's
   optimization-loop story (§III-B) needs.  [solve] nests a "sat.solve"
   span (with conflict/propagation deltas) inside each of these.  [core]
   names the solver doing the work: its stats delta becomes the
   iteration's [iter_stat], its final conflict explains an UNSAT verdict
   (the failed bound assumptions are recorded on the span so a trace
   shows *which* bounds blocked each refinement step), and its progress
   callback feeds the ambient sink while this iteration runs. *)
let iter_span name ~bound ?core ?pool solve =
  let col = collector () in
  let stats_before =
    if col.active then Option.map (fun s -> Solver.stats_copy (Solver.stats s)) core else None
  in
  let t0 = Stopwatch.now () in
  let solve =
    match (core, Atomic.get progress_sink) with
    | Some solver, (Some sink, interval) ->
      fun () ->
        Solver.set_progress ~interval solver
          (Some
             (fun s ->
               let st = Solver.stats s in
               sink
                 {
                   prog_phase = name;
                   prog_bound = bound;
                   prog_conflicts = st.Solver.conflicts;
                   prog_learnts = Solver.n_learnts s;
                   prog_propagations = st.Solver.propagations;
                 }));
        (* cube workers heartbeat through the pool with aggregated
           counters on top of the master's; the sink must be domain-safe
           (it already is: portfolio arms call it concurrently) *)
        (match pool with
        | Some p ->
          Pool.set_progress ~interval p
            (Some
               (fun (pg : Pool.progress) ->
                 let st = Solver.stats solver in
                 sink
                   {
                     prog_phase = name;
                     prog_bound = bound;
                     prog_conflicts = st.Solver.conflicts + pg.Pool.pg_conflicts;
                     prog_learnts = pg.Pool.pg_learnts;
                     prog_propagations = st.Solver.propagations + pg.Pool.pg_propagations;
                   }))
        | None -> ());
        Fun.protect
          ~finally:(fun () ->
            Solver.set_progress solver None;
            match pool with Some p -> Pool.set_progress p None | None -> ())
          solve
    | _ -> solve
  in
  let record r =
    match stats_before with
    | None -> ()
    | Some before ->
      let delta =
        match core with
        | Some s -> Solver.stats_diff ~after:(Solver.stats s) ~before
        | None -> Solver.stats_zero ()
      in
      Solver.stats_add ~into:col.agg delta;
      col.iters <-
        {
          iter_phase = name;
          iter_bound = bound;
          iter_verdict = Solver.result_to_string r;
          iter_seconds = Stopwatch.now () -. t0;
          iter_stats = delta;
        }
        :: col.iters
  in
  let obs = Obs.global () in
  if not (Obs.enabled obs) then begin
    let r = solve () in
    record r;
    r
  end
  else begin
    let sp = Obs.begin_span obs name ~attrs:[ ("bound", Obs.Int bound) ] in
    let r = solve () in
    let attrs = [ ("verdict", Obs.Str (Solver.result_to_string r)) ] in
    let attrs =
      match (r, core) with
      | Solver.Unsat, Some solver ->
        let core = Solver.unsat_core solver in
        ("core_size", Obs.Int (List.length core))
        :: ( "unsat_core",
             Obs.Str
               (String.concat " " (List.map (fun l -> string_of_int (Lit.to_dimacs l)) core)) )
        :: attrs
      | _ -> attrs
    in
    Obs.end_span obs sp ~attrs;
    record r;
    r
  end

let pareto_point ~depth ~swaps =
  let obs = Obs.global () in
  if Obs.enabled obs then
    Obs.instant obs "opt.pareto" ~attrs:[ ("depth", Obs.Int depth); ("swaps", Obs.Int swaps) ]

type outcome = {
  result : Result_.t option;
  optimal : bool;
  iterations : int;
  total_seconds : float;
  pareto : (int * int) list; (* (depth bound, best swaps proven at it) *)
  stats : Solver.stats; (* aggregate over all bound iterations *)
  iter_stats : iter_stat list; (* per bound iteration, oldest first *)
}

let empty_outcome ~iterations ~seconds =
  {
    result = None;
    optimal = false;
    iterations;
    total_seconds = seconds;
    pareto = [];
    stats = Solver.stats_zero ();
    iter_stats = [];
  }

(* Next depth bound after UNSAT (paper §III-B-1). *)
let grow_bound t_b =
  let r = if t_b < 100 then 1.3 else 1.1 in
  max (t_b + 1) (int_of_float (ceil (r *. float_of_int t_b)))

(* Budget-accounted solve calls: derive each call's [?timeout] /
   [?max_conflicts] from the shared {!Budget.state} and charge back what
   the call actually cost (read off the master's stats, which the pool
   merges replica effort into), so wall and conflict caps behave
   identically on the sequential, portfolio and cube paths.  A pool, when
   given and the encoding is pool-capable (plain CNF, no CEGAR loop),
   stands in for the sequential solver call. *)
let esolve ?pool ~st ~assumptions enc =
  let solver = Encoder.solver enc in
  Budget.attach st solver;
  let before = (Solver.stats solver).Solver.conflicts in
  let timeout = Budget.solve_timeout st in
  let max_conflicts = Budget.solve_max_conflicts st in
  let r =
    match pool with
    | Some p when Encoder.pool_capable enc -> Pool.solve p ~assumptions ?max_conflicts ?timeout solver
    | Some _ | None -> Encoder.solve ~assumptions ?max_conflicts ?timeout enc
  in
  Budget.charge st ~conflicts:((Solver.stats solver).Solver.conflicts - before);
  r

let tbsolve ?pool ~st ~assumptions enc =
  let solver = Tb_encoder.solver enc in
  Budget.attach st solver;
  let before = (Solver.stats solver).Solver.conflicts in
  let timeout = Budget.solve_timeout st in
  let max_conflicts = Budget.solve_max_conflicts st in
  let r =
    match pool with
    | Some p when Tb_encoder.pool_capable enc ->
      Pool.solve p ~assumptions ?max_conflicts ?timeout solver
    | Some _ | None -> Tb_encoder.solve ~assumptions ?max_conflicts ?timeout enc
  in
  Budget.charge st ~conflicts:((Solver.stats solver).Solver.conflicts - before);
  r

(* ---- depth optimization ---- *)

(* Returns the outcome and, on success, the encoder together with the
   achieved depth bound, so SWAP optimization can continue on the same
   incremental solver state. *)
let minimize_depth_with_encoder_body ~config ?pool ~st instance =
  let clock = Stopwatch.start () in
  let iterations = ref 0 in
  let t_lb = Instance.depth_lower_bound instance in
  let fail () = (empty_outcome ~iterations:!iterations ~seconds:(Stopwatch.elapsed clock), None) in
  let rec with_horizon t_max =
    let enc = Encoder.build ~config instance ~t_max in
    let check d =
      incr iterations;
      let sel = Encoder.depth_selector enc d in
      iter_span "opt.depth_iter" ~bound:d ~core:(Encoder.solver enc) ?pool (fun () ->
          esolve ?pool ~st ~assumptions:[ sel ] enc)
    in
    (* ascent: grow the bound until SAT *)
    let rec ascend d =
      if Budget.exhausted st then `Budget
      else
        match check d with
        | Solver.Sat -> `Sat d
        | Solver.Unknown _ -> `Budget
        | Solver.Unsat -> if d >= t_max then `Horizon else ascend (min t_max (grow_bound d))
    in
    (* descent: tighten by 1 until UNSAT; [d] is known SAT *)
    let rec descend d =
      if d - 1 < t_lb then (d, true)
      else if Budget.exhausted st then (d, false)
      else
        match check (d - 1) with
        | Solver.Sat -> descend (d - 1)
        | Solver.Unsat -> (d, true)
        | Solver.Unknown _ -> (d, false)
    in
    match ascend t_lb with
    | `Budget -> fail ()
    | `Horizon -> with_horizon (grow_bound t_max)
    | `Sat d_first -> (
      let d, optimal = descend d_first in
      (* re-solve at the chosen bound so the solver holds its model *)
      match check d with
      | Solver.Sat ->
        let status = if optimal then Result_.Optimal else Result_.Feasible in
        let result =
          Encoder.extract ~status ~solve_seconds:(Stopwatch.elapsed clock) ~iterations:!iterations
            enc
        in
        pareto_point ~depth:d ~swaps:result.Result_.swap_count;
        ( {
            result = Some result;
            optimal;
            iterations = !iterations;
            total_seconds = Stopwatch.elapsed clock;
            pareto = [ (d, result.Result_.swap_count) ];
            stats = Solver.stats_zero ();
            iter_stats = [];
          },
          Some (enc, d) )
      | Solver.Unsat | Solver.Unknown _ ->
        (* unreachable in practice: the same bound was SAT moments ago *)
        fail ())
  in
  with_horizon (Instance.depth_upper_bound instance)

let minimize_depth_with_encoder_st ~config ?pool ~st instance =
  let (o, enc), iters, agg =
    collecting (fun () -> minimize_depth_with_encoder_body ~config ?pool ~st instance)
  in
  ({ o with stats = agg; iter_stats = iters }, enc)

let minimize_depth_with_encoder ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    instance =
  minimize_depth_with_encoder_st ~config ?pool ~st:(Budget.start budget) instance

let minimize_depth ?config ?budget ?pool instance =
  fst (minimize_depth_with_encoder ?config ?budget ?pool instance)

(* ---- SWAP optimization (iterative refinement, §III-B-2) ---- *)

(* Descend the SWAP bound under the depth selector for [depth].  [start]
   is the count of the model currently in the solver.  On return the
   solver's model is the best one found.  Returns (best count, proven
   optimal at this depth). *)
let descend_swaps enc ~depth ~start ?pool ~st iterations =
  Encoder.build_counter enc ~max_bound:(max start 1);
  let rec go best =
    if best = 0 then (best, true)
    else if Budget.exhausted st then (best, false)
    else begin
      incr iterations;
      let sel = Encoder.depth_selector enc depth in
      let assumptions =
        match Encoder.swap_bound_assumption enc (best - 1) with
        | Some a -> [ sel; a ]
        | None -> [ sel ]
      in
      match
        iter_span "opt.swap_iter" ~bound:(best - 1) ~core:(Encoder.solver enc) ?pool (fun () ->
            esolve ?pool ~st ~assumptions enc)
      with
      | Solver.Sat -> go (Encoder.model_swap_count enc)
      | Solver.Unsat -> (best, true)
      | Solver.Unknown _ -> (best, false)
    end
  in
  go start

(* Seeding of a depth level's descent:
   [Fresh]       no bound (the very first depth, no warm start);
   [Warm w]      try to start below a heuristic upper bound [w] (paper:
                 "S_UB can alternatively be determined by other heuristic
                 layout synthesizers"); fall back to Fresh on UNSAT;
   [Tightened b] relaxed depth must beat the previous best [b], else stop
                 (paper termination condition 2). *)
type seed = Fresh | Warm of int | Tightened of int

let minimize_swaps_body ~config ?pool ~st ~max_depth_relax ?warm_start instance =
  let clock = Stopwatch.start () in
  let depth_outcome, enc_opt = minimize_depth_with_encoder_st ~config ?pool ~st instance in
  match (depth_outcome.result, enc_opt) with
  | None, _ | _, None -> depth_outcome
  | Some _, Some (enc0, d0) ->
    let iterations = ref depth_outcome.iterations in
    let pareto = ref [] in
    let best = ref None in
    let best_optimal = ref false in
    let capture enc optimal =
      let status = if optimal then Result_.Optimal else Result_.Feasible in
      Encoder.extract ~status ~solve_seconds:(Stopwatch.elapsed clock) ~iterations:!iterations enc
    in
    (* Sweep depth bounds d0, d0+1, ...; at each, descend the SWAP count. *)
    let rec sweep enc d seed relax_left =
      incr iterations;
      let sel = Encoder.depth_selector enc d in
      let bound_assumption b =
        Encoder.build_counter enc ~max_bound:(max b 1);
        match Encoder.swap_bound_assumption enc (max 0 (b - 1)) with
        | Some a -> [ sel; a ]
        | None -> [ sel ]
      in
      let assumptions =
        match seed with
        | Fresh -> [ sel ]
        | Warm w | Tightened w -> bound_assumption w
      in
      let prev = match seed with Fresh | Warm _ -> None | Tightened b -> Some b in
      match
        iter_span "opt.sweep_level" ~bound:d ~core:(Encoder.solver enc) ?pool (fun () ->
            esolve ?pool ~st ~assumptions enc)
      with
      | Solver.Unsat when (match seed with Warm _ -> true | Fresh | Tightened _ -> false) ->
        (* heuristic bound too tight for the optimal depth: restart the
           level without it *)
        sweep enc d Fresh relax_left
      | Solver.Unsat | Solver.Unknown _ ->
        (* no improvement at the relaxed depth (paper termination cond. 2),
           or out of budget *)
        ()
      | Solver.Sat ->
        let start = Encoder.model_swap_count enc in
        let count, optimal = descend_swaps enc ~depth:d ~start ?pool ~st iterations in
        pareto_point ~depth:d ~swaps:count;
        pareto := (d, count) :: !pareto;
        let improves = match prev with None -> true | Some b -> count < b in
        if improves then begin
          best := Some (capture enc optimal);
          best_optimal := optimal
        end;
        if count > 0 && relax_left > 0 && not (Budget.exhausted st) then begin
          let d' = d + 1 in
          let enc' =
            if d' + 1 <= enc.Encoder.t_max then enc
            else Encoder.build ~config instance ~t_max:(d' + 2)
          in
          sweep enc' d' (Tightened count) (relax_left - 1)
        end
    in
    let initial_seed = match warm_start with Some w when w >= 0 -> Warm w | Some _ | None -> Fresh in
    sweep enc0 d0 initial_seed max_depth_relax;
    let result =
      match !best with
      | Some r -> Some r
      | None -> depth_outcome.result (* fall back to the depth-optimal model *)
    in
    {
      result;
      optimal = !best_optimal;
      iterations = !iterations;
      total_seconds = Stopwatch.elapsed clock;
      pareto = List.rev !pareto;
      stats = Solver.stats_zero ();
      iter_stats = [];
    }

let minimize_swaps ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    ?(max_depth_relax = 4) ?warm_start instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () -> minimize_swaps_body ~config ?pool ~st ~max_depth_relax ?warm_start instance)
  in
  { o with stats = agg; iter_stats = iters }

(* ---- fidelity-aware SWAP optimization ---- *)

(* Minimize the *weighted* SWAP cost at the optimal depth: [weights e] is
   the integer cost of a SWAP on edge [e] (e.g. scaled -log fidelity), so
   the synthesizer prefers routing through high-fidelity couplers.  Same
   iterative descent as [minimize_swaps], over the weighted counter. *)
let minimize_weighted_swaps_body ~config ?pool ~st ~weights instance =
  let clock = Stopwatch.start () in
  let depth_outcome, enc_opt = minimize_depth_with_encoder_st ~config ?pool ~st instance in
  match (depth_outcome.result, enc_opt) with
  | None, _ | _, None -> depth_outcome
  | Some _, Some (enc, d) ->
    let iterations = ref depth_outcome.iterations in
    let sel = Encoder.depth_selector enc d in
    let start = Encoder.model_weighted_cost enc ~weights in
    Encoder.build_weighted_counter enc ~weights ~max_bound:(max start 1);
    let rec descend best =
      if best = 0 then (best, true)
      else if Budget.exhausted st then (best, false)
      else begin
        incr iterations;
        let assumptions =
          match Encoder.swap_bound_assumption enc (best - 1) with
          | Some a -> [ sel; a ]
          | None -> [ sel ]
        in
        match
          iter_span "opt.weighted_iter" ~bound:(best - 1) ~core:(Encoder.solver enc) ?pool
            (fun () -> esolve ?pool ~st ~assumptions enc)
        with
        | Solver.Sat -> descend (Encoder.model_weighted_cost enc ~weights)
        | Solver.Unsat -> (best, true)
        | Solver.Unknown _ -> (best, false)
      end
    in
    let cost, optimal = descend start in
    pareto_point ~depth:d ~swaps:cost;
    (* the winning model is still in the solver *)
    let status = if optimal then Result_.Optimal else Result_.Feasible in
    let result =
      Encoder.extract ~status ~solve_seconds:(Stopwatch.elapsed clock) ~iterations:!iterations enc
    in
    {
      result = Some result;
      optimal;
      iterations = !iterations;
      total_seconds = Stopwatch.elapsed clock;
      pareto = [ (d, cost) ];
      stats = Solver.stats_zero ();
      iter_stats = [];
    }

let minimize_weighted_swaps ?(config = Config.default) ?(budget = Budget.unlimited) ?pool ~weights
    instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () -> minimize_weighted_swaps_body ~config ?pool ~st ~weights instance)
  in
  { o with stats = agg; iter_stats = iters }

(* ---- transition-based optimization (TB-OLSQ2, §III-D) ---- *)

type tb_outcome = {
  tb_result : Tb_encoder.result option;
  tb_optimal : bool;
  tb_iterations : int;
  tb_seconds : float;
  tb_stats : Solver.stats; (* aggregate over all block/SWAP iterations *)
  tb_iter_stats : iter_stat list; (* per bound iteration, oldest first *)
}

(* Block-count minimization: the bound starts at 1 and increases by 1 on
   UNSAT (paper §III-D). *)
let tb_minimize_blocks_body ~config ?pool ~st ~max_blocks instance =
  let clock = Stopwatch.start () in
  let iterations = ref 0 in
  let done_ result optimal =
    {
      tb_result = result;
      tb_optimal = optimal;
      tb_iterations = !iterations;
      tb_seconds = Stopwatch.elapsed clock;
      tb_stats = Solver.stats_zero ();
      tb_iter_stats = [];
    }
  in
  let rec try_blocks b =
    if b > max_blocks || Budget.exhausted st then done_ None false
    else begin
      let enc = Tb_encoder.build ~config instance ~num_blocks:b in
      incr iterations;
      match
        iter_span "opt.tb_iter" ~bound:b ~core:(Tb_encoder.solver enc) ?pool (fun () ->
            tbsolve ?pool ~st ~assumptions:[] enc)
      with
      | Solver.Sat ->
        let r =
          Tb_encoder.extract ~status:Result_.Optimal ~solve_seconds:(Stopwatch.elapsed clock)
            ~iterations:!iterations enc
        in
        pareto_point ~depth:r.Tb_encoder.blocks ~swaps:r.Tb_encoder.swap_count;
        done_ (Some r) true
      | Solver.Unsat -> try_blocks (b + 1)
      | Solver.Unknown _ -> done_ None false
    end
  in
  try_blocks 1

let tb_minimize_blocks ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    ?(max_blocks = 16) instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () -> tb_minimize_blocks_body ~config ?pool ~st ~max_blocks instance)
  in
  { o with tb_stats = agg; tb_iter_stats = iters }

(* Descend the SWAP bound on a TB encoder holding a model. *)
let tb_descend enc ?pool ~st iterations =
  let start = Tb_encoder.model_swap_count enc in
  Tb_encoder.build_counter enc ~max_bound:(max start 1);
  let rec go best =
    if best = 0 then (best, true)
    else if Budget.exhausted st then (best, false)
    else begin
      incr iterations;
      match Tb_encoder.swap_bound_assumption enc (best - 1) with
      | None -> (best, true)
      | Some a -> (
        match
          iter_span "opt.swap_iter" ~bound:(best - 1) ~core:(Tb_encoder.solver enc) ?pool
            (fun () -> tbsolve ?pool ~st ~assumptions:[ a ] enc)
        with
        | Solver.Sat -> go (Tb_encoder.model_swap_count enc)
        | Solver.Unsat -> (best, true)
        | Solver.Unknown _ -> (best, false))
    end
  in
  go start

(* SWAP minimization on the transition-based model: minimal block count
   first, then SWAP descent; relax the block count while it reduces the
   SWAP count further. *)
let tb_minimize_swaps_body ~config ?pool ~st ~max_blocks ~max_block_relax instance =
  let clock = Stopwatch.start () in
  let iterations = ref 0 in
  let best = ref None in
  let best_optimal = ref false in
  let record enc optimal =
    let status = if optimal then Result_.Optimal else Result_.Feasible in
    let r =
      Tb_encoder.extract ~status ~solve_seconds:(Stopwatch.elapsed clock) ~iterations:!iterations
        enc
    in
    pareto_point ~depth:r.Tb_encoder.blocks ~swaps:r.Tb_encoder.swap_count;
    let keep =
      match !best with
      | None -> true
      | Some b -> r.Tb_encoder.swap_count < b.Tb_encoder.swap_count
    in
    if keep then begin
      best := Some r;
      best_optimal := optimal
    end;
    r.Tb_encoder.swap_count
  in
  (* find the minimal SAT block count *)
  let rec first_sat b =
    if b > max_blocks || Budget.exhausted st then None
    else begin
      let enc = Tb_encoder.build ~config instance ~num_blocks:b in
      incr iterations;
      match
        iter_span "opt.tb_iter" ~bound:b ~core:(Tb_encoder.solver enc) ?pool (fun () ->
            tbsolve ?pool ~st ~assumptions:[] enc)
      with
      | Solver.Sat -> Some (enc, b)
      | Solver.Unsat -> first_sat (b + 1)
      | Solver.Unknown _ -> None
    end
  in
  (match first_sat 1 with
  | None -> ()
  | Some (enc, b0) ->
    let count, optimal = tb_descend enc ?pool ~st iterations in
    let count = record enc optimal |> min count in
    (* relax the block count while it still reduces SWAPs *)
    let rec relax b prev relax_left =
      if prev = 0 || relax_left = 0 || b + 1 > max_blocks || Budget.exhausted st then ()
      else begin
        let enc' = Tb_encoder.build ~config instance ~num_blocks:(b + 1) in
        Tb_encoder.build_counter enc' ~max_bound:(max prev 1);
        incr iterations;
        match Tb_encoder.swap_bound_assumption enc' (prev - 1) with
        | None -> ()
        | Some a -> (
          match
            iter_span "opt.tb_relax" ~bound:(b + 1) ~core:(Tb_encoder.solver enc') ?pool
              (fun () -> tbsolve ?pool ~st ~assumptions:[ a ] enc')
          with
          | Solver.Unsat | Solver.Unknown _ -> () (* no improvement: stop *)
          | Solver.Sat ->
            let c, opt = tb_descend enc' ?pool ~st iterations in
            let c = record enc' opt |> min c in
            relax (b + 1) c (relax_left - 1))
      end
    in
    relax b0 count max_block_relax);
  {
    tb_result = !best;
    tb_optimal = !best_optimal;
    tb_iterations = !iterations;
    tb_seconds = Stopwatch.elapsed clock;
    tb_stats = Solver.stats_zero ();
    tb_iter_stats = [];
  }

let tb_minimize_swaps ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    ?(max_blocks = 16) ?(max_block_relax = 2) instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () ->
        tb_minimize_swaps_body ~config ?pool ~st ~max_blocks ~max_block_relax instance)
  in
  { o with tb_stats = agg; tb_iter_stats = iters }

(* ---- incremental horizon-extension optimization (lib/incremental) ---- *)

(* Same refinement loops as above, but over one persistent
   [Session.t]: when a depth bound outgrows the horizon, the session
   emits only the delta CNF for the new time steps instead of
   re-encoding from scratch, so learnt clauses survive every horizon
   growth, not just bound changes within one horizon.  The session's
   encoding is plain CNF, hence always pool-capable.

   The session encoding ignores [config]'s formulation/encoding arms
   (it is a fixed one-hot ladder encoding); [config.symmetry] and the
   budget/pool knobs apply as usual. *)

module Session = Olsq2_incremental.Session

let isolve ?pool ~st ~assumptions sess =
  let solver = Session.solver sess in
  Budget.attach st solver;
  let before = (Solver.stats solver).Solver.conflicts in
  let timeout = Budget.solve_timeout st in
  let max_conflicts = Budget.solve_max_conflicts st in
  let r =
    match pool with
    | Some p ->
      Pool.solve p
        ~assumptions:(Session.horizon_assumption sess :: assumptions)
        ?max_conflicts ?timeout solver
    | None -> Session.solve ~assumptions ?max_conflicts ?timeout sess
  in
  Budget.charge st ~conflicts:((Solver.stats solver).Solver.conflicts - before);
  r

let session_result ~status ~solve_seconds ~iterations sess =
  let m = Session.model sess in
  {
    Result_.status;
    depth = m.Session.m_depth;
    swap_count = List.length m.Session.m_swaps;
    mapping = m.Session.m_mapping;
    schedule = m.Session.m_schedule;
    swaps =
      List.map
        (fun (e, tf) -> { Result_.sw_edge = e; sw_finish = tf })
        m.Session.m_swaps;
    solve_seconds;
    iterations;
  }

(* A depth bound [d] is fully expressive only when SWAPs may finish at
   every step below it; the last representable finish step is
   [t_max - 2], so proving UNSAT at [d] needs [t_max >= d + 1].  The
   classic path gets this by rebuilding with a larger horizon and
   restarting the ascent; here the horizon grows in place and the
   ascent just continues — every UNSAT already proven (at bounds below
   the old horizon) stays valid in the extended encoding. *)
let session_ensure_horizon sess d =
  if d + 1 > Session.t_max sess then
    Session.extend_horizon sess ~t_max:(max (d + 1) (grow_bound (Session.t_max sess)))

let minimize_depth_session_body ~config ?pool ~st instance =
  let clock = Stopwatch.start () in
  let iterations = ref 0 in
  let t_lb = max 1 (Instance.depth_lower_bound instance) in
  let sess =
    Session.create
      ~symmetry:config.Config.symmetry
      ~t_max:(max (t_lb + 1) (Instance.depth_upper_bound instance))
      ~swap_duration:instance.Instance.swap_duration instance.Instance.circuit
      instance.Instance.device
  in
  let fail () =
    (empty_outcome ~iterations:!iterations ~seconds:(Stopwatch.elapsed clock), None)
  in
  let check d =
    incr iterations;
    session_ensure_horizon sess d;
    let sel = Session.depth_selector sess d in
    iter_span "opt.depth_iter" ~bound:d ~core:(Session.solver sess) ?pool (fun () ->
        isolve ?pool ~st ~assumptions:[ sel ] sess)
  in
  let rec ascend d =
    if Budget.exhausted st then `Budget
    else
      match check d with
      | Solver.Sat -> `Sat d
      | Solver.Unknown _ -> `Budget
      | Solver.Unsat -> ascend (grow_bound d)
  in
  let rec descend d =
    if d - 1 < t_lb then (d, true)
    else if Budget.exhausted st then (d, false)
    else
      match check (d - 1) with
      | Solver.Sat -> descend (d - 1)
      | Solver.Unsat -> (d, true)
      | Solver.Unknown _ -> (d, false)
  in
  match ascend t_lb with
  | `Budget -> fail ()
  | `Sat d_first -> (
    let d, optimal = descend d_first in
    (* re-solve at the chosen bound so the solver holds its model *)
    match check d with
    | Solver.Sat ->
      let status = if optimal then Result_.Optimal else Result_.Feasible in
      let result =
        session_result ~status ~solve_seconds:(Stopwatch.elapsed clock)
          ~iterations:!iterations sess
      in
      pareto_point ~depth:d ~swaps:result.Result_.swap_count;
      ( {
          result = Some result;
          optimal;
          iterations = !iterations;
          total_seconds = Stopwatch.elapsed clock;
          pareto = [ (d, result.Result_.swap_count) ];
          stats = Solver.stats_zero ();
          iter_stats = [];
        },
        Some (sess, d) )
    | Solver.Unsat | Solver.Unknown _ ->
      (* unreachable in practice: the same bound was SAT moments ago *)
      fail ())

let minimize_depth_incremental_st ~config ?pool ~st instance =
  let (o, sess), iters, agg =
    collecting (fun () -> minimize_depth_session_body ~config ?pool ~st instance)
  in
  ({ o with stats = agg; iter_stats = iters }, sess)

let minimize_depth_incremental ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    instance =
  fst (minimize_depth_incremental_st ~config ?pool ~st:(Budget.start budget) instance)

(* SWAP descent on a session holding a model (mirror of [descend_swaps]). *)
let descend_swaps_session sess ~depth ~start ?pool ~st iterations =
  Session.build_counter sess ~max_bound:(max start 1);
  let rec go best =
    if best = 0 then (best, true)
    else if Budget.exhausted st then (best, false)
    else begin
      incr iterations;
      let sel = Session.depth_selector sess depth in
      let assumptions =
        match Session.swap_bound_assumption sess (best - 1) with
        | Some a -> [ sel; a ]
        | None -> [ sel ]
      in
      match
        iter_span "opt.swap_iter" ~bound:(best - 1) ~core:(Session.solver sess) ?pool
          (fun () -> isolve ?pool ~st ~assumptions sess)
      with
      | Solver.Sat -> go (Session.model_swap_count sess)
      | Solver.Unsat -> (best, true)
      | Solver.Unknown _ -> (best, false)
    end
  in
  go start

let minimize_swaps_incremental_body ~config ?pool ~st ~max_depth_relax ?warm_start instance =
  let clock = Stopwatch.start () in
  let depth_outcome, sess_opt = minimize_depth_incremental_st ~config ?pool ~st instance in
  match (depth_outcome.result, sess_opt) with
  | None, _ | _, None -> depth_outcome
  | Some _, Some (sess, d0) ->
    let iterations = ref depth_outcome.iterations in
    let pareto = ref [] in
    let best = ref None in
    let best_optimal = ref false in
    let capture optimal =
      let status = if optimal then Result_.Optimal else Result_.Feasible in
      session_result ~status ~solve_seconds:(Stopwatch.elapsed clock)
        ~iterations:!iterations sess
    in
    (* Sweep depth bounds d0, d0+1, ...; at each, descend the SWAP
       count (same frontier walk as [minimize_swaps_body], on one
       persistent solver — depth relaxation extends the horizon in
       place instead of re-encoding). *)
    let rec sweep d seed relax_left =
      incr iterations;
      session_ensure_horizon sess (d + 1);
      let sel = Session.depth_selector sess d in
      let bound_assumption b =
        Session.build_counter sess ~max_bound:(max b 1);
        match Session.swap_bound_assumption sess (max 0 (b - 1)) with
        | Some a -> [ sel; a ]
        | None -> [ sel ]
      in
      let assumptions =
        match seed with
        | Fresh -> [ sel ]
        | Warm w | Tightened w -> bound_assumption w
      in
      let prev = match seed with Fresh | Warm _ -> None | Tightened b -> Some b in
      match
        iter_span "opt.sweep_level" ~bound:d ~core:(Session.solver sess) ?pool (fun () ->
            isolve ?pool ~st ~assumptions sess)
      with
      | Solver.Unsat when (match seed with Warm _ -> true | Fresh | Tightened _ -> false) ->
        sweep d Fresh relax_left
      | Solver.Unsat | Solver.Unknown _ -> ()
      | Solver.Sat ->
        let start = Session.model_swap_count sess in
        let count, optimal = descend_swaps_session sess ~depth:d ~start ?pool ~st iterations in
        pareto_point ~depth:d ~swaps:count;
        pareto := (d, count) :: !pareto;
        let improves = match prev with None -> true | Some b -> count < b in
        if improves then begin
          best := Some (capture optimal);
          best_optimal := optimal
        end;
        if count > 0 && relax_left > 0 && not (Budget.exhausted st) then
          sweep (d + 1) (Tightened count) (relax_left - 1)
    in
    let initial_seed =
      match warm_start with Some w when w >= 0 -> Warm w | Some _ | None -> Fresh
    in
    sweep d0 initial_seed max_depth_relax;
    let result =
      match !best with Some r -> Some r | None -> depth_outcome.result
    in
    {
      result;
      optimal = !best_optimal;
      iterations = !iterations;
      total_seconds = Stopwatch.elapsed clock;
      pareto = List.rev !pareto;
      stats = Solver.stats_zero ();
      iter_stats = [];
    }

let minimize_swaps_incremental ?(config = Config.default) ?(budget = Budget.unlimited) ?pool
    ?(max_depth_relax = 4) ?warm_start instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () ->
        minimize_swaps_incremental_body ~config ?pool ~st ~max_depth_relax ?warm_start instance)
  in
  { o with stats = agg; iter_stats = iters }

let minimize_weighted_swaps_incremental_body ~config ?pool ~st ~weights instance =
  let clock = Stopwatch.start () in
  (* orbit symmetry breaking is unsound under per-edge weights: distinct
     members of an edge orbit can carry different costs *)
  let config = { config with Config.symmetry = false } in
  let depth_outcome, sess_opt = minimize_depth_incremental_st ~config ?pool ~st instance in
  match (depth_outcome.result, sess_opt) with
  | None, _ | _, None -> depth_outcome
  | Some _, Some (sess, d) ->
    let iterations = ref depth_outcome.iterations in
    let sel = Session.depth_selector sess d in
    let start = Session.model_weighted_cost sess ~weights in
    Session.build_weighted_counter sess ~weights ~max_bound:(max start 1);
    let rec descend best =
      if best = 0 then (best, true)
      else if Budget.exhausted st then (best, false)
      else begin
        incr iterations;
        let assumptions =
          match Session.swap_bound_assumption sess (best - 1) with
          | Some a -> [ sel; a ]
          | None -> [ sel ]
        in
        match
          iter_span "opt.weighted_iter" ~bound:(best - 1) ~core:(Session.solver sess) ?pool
            (fun () -> isolve ?pool ~st ~assumptions sess)
        with
        | Solver.Sat -> descend (Session.model_weighted_cost sess ~weights)
        | Solver.Unsat -> (best, true)
        | Solver.Unknown _ -> (best, false)
      end
    in
    let cost, optimal = descend start in
    pareto_point ~depth:d ~swaps:cost;
    let status = if optimal then Result_.Optimal else Result_.Feasible in
    let result =
      session_result ~status ~solve_seconds:(Stopwatch.elapsed clock)
        ~iterations:!iterations sess
    in
    {
      result = Some result;
      optimal;
      iterations = !iterations;
      total_seconds = Stopwatch.elapsed clock;
      pareto = [ (d, cost) ];
      stats = Solver.stats_zero ();
      iter_stats = [];
    }

let minimize_weighted_swaps_incremental ?(config = Config.default) ?(budget = Budget.unlimited)
    ?pool ~weights instance =
  let st = Budget.start budget in
  let o, iters, agg =
    collecting (fun () ->
        minimize_weighted_swaps_incremental_body ~config ?pool ~st ~weights instance)
  in
  { o with stats = agg; iter_stats = iters }
