(** Unified synthesis facade: one entry point over every optimization
    objective in the OLSQ2 stack (paper §III-B, §III-D).

    [run] subsumes the five {!Optimizer} entry points
    ([minimize_depth], [minimize_swaps], [minimize_weighted_swaps],
    [tb_minimize_blocks], [tb_minimize_swaps]) behind a single signature
    and a single {!report} record, and snapshots the global
    {!Olsq2_obs.Obs} tracer so callers get the trace summary of exactly
    this run without touching the tracer themselves. *)

(** What to minimize.

    - [Depth]: exact circuit depth (full OLSQ2 model).
    - [Swaps]: SWAP count via 2-D (depth, SWAP) refinement;
      [warm_start] seeds the first descent with a heuristic upper bound
      (e.g. SABRE's count), the paper's S_UB suggestion.
    - [Weighted_swaps w]: fidelity-aware SWAP cost where [w e] is the
      integer cost of a SWAP on edge [e] (e.g. scaled -log fidelity).
    - [Tb_blocks]: TB-OLSQ2 block-count minimization (coarse depth proxy).
    - [Tb_swaps]: TB-OLSQ2 SWAP minimization with block relaxation. *)
type objective =
  | Depth
  | Swaps of { warm_start : int option }
  | Weighted_swaps of (int -> int)
  | Tb_blocks
  | Tb_swaps

(** Outcome of a synthesis run, unified across full and transition-based
    models.  For TB objectives, [result] holds the expanded concrete
    schedule and [pareto] records [(blocks, swap_count)] of the accepted
    block model; for full-model objectives [pareto] records
    [(depth bound, best SWAPs proven at it)] exactly as
    {!Optimizer.outcome} does. *)
type report = {
  result : Result_.t option;  (** best valid schedule found, if any *)
  optimal : bool;  (** objective value proved optimal within budget *)
  iterations : int;  (** total solver calls *)
  seconds : float;  (** wall-clock spent in the engine *)
  pareto : (int * int) list;
  trace : Olsq2_obs.Obs.summary;
      (** summary of trace events recorded during this run; empty when the
          global tracer is disabled *)
  solver_stats : Olsq2_sat.Solver.stats;
      (** aggregate search effort across every bound iteration of the run
          (conflicts, propagations, LBD / trail-depth histograms,
          propagations/sec); collected whether or not the tracer is
          enabled *)
  iter_stats : Optimizer.iter_stat list;
      (** per-bound-iteration effort records, oldest first *)
  certificate : Certificate.t option;
      (** optimality certificate, present only when [certify] was requested,
          the run proved optimality, and the objective supports
          certification ([Depth] and [Swaps]; weighted and TB objectives
          have no direct CNF bound to refute) *)
}

(** [run ?config ?budget ~objective instance] synthesizes a layout for
    [instance] minimizing [objective].  [budget] bounds wall-clock seconds
    (engine returns its best-so-far on exhaustion); [config] selects the
    encoding (default {!Config.default}).  The whole run is wrapped in a
    [synthesis.<objective>] span on the global tracer.

    [simplify] overrides [config]'s [simplify] flag: SatELite-style CNF
    preprocessing + inprocessing of every encoding built during the run
    (including the certification re-solve), with its proof events logged
    so certificates stay checkable — see {!Olsq2_simplify.Simplify}.

    [certify] re-solves at the claimed optimum on a fresh proof-logged
    encoder and builds a {!Certificate.t}: a validated model plus a
    DRAT-checked refutation of the bound below (see {!Certificate}).
    [proof_file] writes the emitted DRAT proof (text format) there. *)
val run :
  ?config:Config.t ->
  ?simplify:bool ->
  ?budget:float ->
  ?certify:bool ->
  ?proof_file:string ->
  objective:objective ->
  Instance.t ->
  report
