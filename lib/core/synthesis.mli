(** Unified synthesis facade: one entry point over every optimization
    objective in the OLSQ2 stack (paper §III-B, §III-D).

    [run] subsumes the five {!Optimizer} entry points
    ([minimize_depth], [minimize_swaps], [minimize_weighted_swaps],
    [tb_minimize_blocks], [tb_minimize_swaps]) behind a single signature
    and a single {!report} record, and snapshots the global
    {!Olsq2_obs.Obs} tracer so callers get the trace summary of exactly
    this run without touching the tracer themselves. *)

(** What to minimize.

    - [Depth]: exact circuit depth (full OLSQ2 model).
    - [Swaps]: SWAP count via 2-D (depth, SWAP) refinement;
      [warm_start] seeds the first descent with a heuristic upper bound
      (e.g. SABRE's count), the paper's S_UB suggestion.
    - [Weighted_swaps w]: fidelity-aware SWAP cost where [w e] is the
      integer cost of a SWAP on edge [e] (e.g. scaled -log fidelity).
    - [Tb_blocks]: TB-OLSQ2 block-count minimization (coarse depth proxy).
    - [Tb_swaps]: TB-OLSQ2 SWAP minimization with block relaxation. *)
type objective =
  | Depth
  | Swaps of { warm_start : int option }
  | Weighted_swaps of (int -> int)
  | Tb_blocks
  | Tb_swaps

(** Outcome of a synthesis run, unified across full and transition-based
    models.  For TB objectives, [result] holds the expanded concrete
    schedule and [pareto] records [(blocks, swap_count)] of the accepted
    block model; for full-model objectives [pareto] records
    [(depth bound, best SWAPs proven at it)] exactly as
    {!Optimizer.outcome} does. *)
type report = {
  result : Result_.t option;  (** best valid schedule found, if any *)
  optimal : bool;  (** objective value proved optimal within budget *)
  iterations : int;  (** total solver calls *)
  seconds : float;  (** wall-clock spent in the engine *)
  pareto : (int * int) list;
  trace : Olsq2_obs.Obs.summary;
      (** summary of trace events recorded during this run; empty when the
          global tracer is disabled *)
  solver_stats : Olsq2_sat.Solver.stats;
      (** aggregate search effort across every bound iteration of the run
          (conflicts, propagations, LBD / trail-depth histograms,
          propagations/sec); collected whether or not the tracer is
          enabled *)
  iter_stats : Optimizer.iter_stat list;
      (** per-bound-iteration effort records, oldest first *)
  certificate : Certificate.t option;
      (** optimality certificate, present only when [certify] was requested,
          the run proved optimality, and the objective supports
          certification ([Depth] and [Swaps]; weighted and TB objectives
          have no direct CNF bound to refute) *)
}

(** How a synthesis run is configured.  An [Options.t] collects what used
    to be five independent optional labels (plus the new parallel knobs)
    into one value that can be built once and reused across runs:

    {[
      let opts =
        Synthesis.Options.(
          default
          |> with_budget (Budget.of_seconds 60.)
          |> with_workers 4
          |> with_certify ~proof_file:"proof.drat" true)
      in
      Synthesis.run ~options:opts ~objective:Depth instance
    ]} *)
module Options : sig
  (** Single-solve parallelism: [workers > 1] creates a cube-and-conquer
      {!Olsq2_parallel.Pool} of that many worker domains and routes hard
      bound queries through it (easy queries — those solved within the
      pool's probe threshold — keep the exact sequential behavior).
      [share] exchanges short learnt clauses between the pool's workers
      (on by default; automatically disabled on proof-logging solvers, so
      certification is always sound).  [cube_depth] fixes the number of
      split variables [k] (2^k cubes); defaults to the smallest [k] with
      at least [4 * workers] cubes. *)
  type parallel = { workers : int; share : bool; cube_depth : int option }

  type t = {
    config : Config.t;  (** encoding selection (default {!Config.default}) *)
    simplify : bool option;
        (** when [Some b], overrides [config]'s [simplify] flag:
            SatELite-style CNF preprocessing + inprocessing of every
            encoding built during the run (including the certification
            re-solve) — see {!Olsq2_simplify.Simplify} *)
    budget : Budget.t;
        (** resource allowance (wall seconds / conflicts / per-bound cap);
            the engine returns its best-so-far on exhaustion *)
    certify : bool;
        (** re-solve at the claimed optimum on a fresh proof-logged
            encoder and build a {!Certificate.t} (see {!Certificate}) *)
    proof_file : string option;
        (** write the emitted DRAT proof (text format) there *)
    parallel : parallel;
    incremental : bool;
        (** solve [Depth] / [Swaps] / [Weighted_swaps] on one persistent
            horizon-extension session ({!Olsq2_incremental.Session}):
            horizon growth emits delta CNF instead of re-encoding, so
            learnt clauses survive it.  The session encoding ignores
            [config]'s formulation/encoding arms; [config.symmetry],
            budget and pool apply.  TB objectives ignore this flag.
            Certification is unaffected (it re-solves the claimed bound
            on a fresh classic encoder either way).  This is the
            default: the session reaches the same optima as the
            re-encode loop at a fraction of the wall time.  The default
            honors the [OLSQ2_INCREMENTAL] environment variable
            (set it to [false] to restore the classic loop suite-wide),
            else [true]. *)
    device : string option;
        (** named target device, resolved with
            {!Olsq2_device.Devices.by_name} (e.g. ["heavy-hex-127"]); the
            serve daemon accepts it in place of an explicit coupling
            list, and the CLI sets it from [--device].  [None] means the
            caller provides the device some other way. *)
    sat : Olsq2_sat.Tuning.t;
        (** SAT-core search strategy (restart schedule, phase policy,
            reduce-DB keep fraction, vivification budget, clause arena
            sizing, share filters, pool probe threshold).  Installed as
            the ambient {!Olsq2_sat.Tuning} around the whole run, so
            every solver created on its behalf — encoder contexts,
            incremental sessions, pool replicas, the certification
            re-solve — inherits it.  The CLI sets it from repeated
            [--sat KEY=VAL] flags; the serve daemon accepts it as a
            nested ["sat"] object. *)
  }

  (** [workers = 1]: no pool. *)
  val sequential : parallel

  (** Everything off / unlimited; [parallel.workers] honors the
      [OLSQ2_WORKERS] environment variable (so test suites and CI can run
      parallel without threading a flag), defaulting to 1. *)
  val default : t

  val with_config : Config.t -> t -> t
  val with_simplify : bool -> t -> t
  val with_budget : Budget.t -> t -> t
  val with_certify : ?proof_file:string -> bool -> t -> t

  (** [with_workers n t] sets [parallel.workers] (clamped to >= 1),
      optionally overriding [share] / [cube_depth]. *)
  val with_workers : ?share:bool -> ?cube_depth:int -> int -> t -> t

  val with_incremental : bool -> t -> t
  val with_device : string -> t -> t

  (** [with_tuning tu t] sets the SAT-core strategy record (see
      {!Olsq2_sat.Tuning}); build [tu] from
      [Olsq2_sat.Tuning.(default |> with_restart ... |> with_vivify ...)]. *)
  val with_tuning : Olsq2_sat.Tuning.t -> t -> t

  (** Field-wise equality over the serializable fields; the runtime
      [Budget.control] handle is ignored. *)
  val equal : t -> t -> bool

  (** {2 JSON codec}

      The canonical wire format shared by the serve daemon, the CLI and
      the tests (see README "Serving" for the request schema).  Round
      trip: [of_assoc (to_assoc o)] is [Ok o'] with [equal o o'];
      {!Budget.control} does not survive serialization by design. *)

  (** Stable field rendering, mirroring {!Config.to_assoc} one level up:
      [config] / [budget] are nested objects, option fields serialize as
      [Null]. *)
  val to_assoc : t -> (string * Olsq2_obs.Obs.Json.json) list

  (** {!to_assoc} wrapped in a JSON object. *)
  val to_json : t -> Olsq2_obs.Obs.Json.json

  (** Inverse of {!to_assoc}: missing or [Null] keys take {!default}'s
      value (so partial wire requests stay valid); type mismatches and
      unknown enum values are an [Error]. *)
  val of_assoc : (string * Olsq2_obs.Obs.Json.json) list -> (t, string) result

  (** {!of_assoc} on a JSON object ([Error] on any other JSON). *)
  val of_json : Olsq2_obs.Obs.Json.json -> (t, string) result
end

(** [run ?options ~objective instance] synthesizes a layout for
    [instance] minimizing [objective] under [options] (default
    {!Options.default}).  The whole run is wrapped in a
    [synthesis.<objective>] span on the global tracer. *)
val run : ?options:Options.t -> objective:objective -> Instance.t -> report
