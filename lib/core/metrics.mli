(** Success-rate figures of merit for synthesized layouts (the paper's
    §I motivation: SWAP count and depth drive NISQ success rates). *)

type t = {
  depth : int;
  single_qubit_gates : int;
  two_qubit_gates : int;
  swap_gates : int;
  equivalent_cnots : int;  (** 2q gates + 3 per SWAP *)
  log_success : float;
}

type error_model = {
  single_qubit_fidelity : float;
  two_qubit_fidelity : float;
  coherence_steps : float;  (** idle-decay constant in scheduler steps *)
}

val default_error_model : error_model
val of_result : ?model:error_model -> Instance.t -> Result_.t -> t
val success_probability : t -> float

(** How many times likelier [a] is to succeed than [b]. *)
val success_ratio : t -> t -> float

val pp : Format.formatter -> t -> unit
