(* olsq2-serve: the synthesis daemon.  All synthesis knobs come from
   Serve.Cli_options, so they are spelled exactly like `olsq2 synth`'s;
   flags parsed here only configure the server itself. *)

module Serve = Olsq2_serve
open Cmdliner

let port_arg =
  let doc = "TCP port to listen on (0 picks an ephemeral port and prints it)." in
  Arg.(value & opt int Serve.Server.default_config.Serve.Server.port & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "Address to bind." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)

let pool_arg =
  let doc = "Synthesis worker domains: how many requests solve concurrently." in
  Arg.(value & opt int 1 & info [ "pool" ] ~docv:"N" ~doc)

let handlers_arg =
  let doc = "Connection handler domains (bounds concurrent synchronous requests)." in
  Arg.(value & opt int 2 & info [ "handlers" ] ~docv:"N" ~doc)

let cache_capacity_arg =
  let doc = "Maximum cached results (canonically keyed, FIFO eviction)." in
  Arg.(value & opt int 256 & info [ "cache-capacity" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log request lifecycle on stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let access_log_arg =
  let doc =
    "Append one JSON line per request (ts, request id, method, path, status, seconds) to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)

let run (common : Serve.Cli_options.common) port host pool handlers cache_capacity verbose
    access_log =
  (* the shared synthesis flags become the per-request defaults: a
     request without an "options" object runs under them, and the
     daemon's --budget backstops requests that bring none of their own *)
  let cfg =
    {
      Serve.Server.host;
      port;
      pool_workers = pool;
      handlers;
      cache_capacity;
      default_options = Serve.Cli_options.options common;
      verbose;
      access_log;
    }
  in
  let server = Serve.Server.start cfg in
  Printf.printf "olsq2-serve listening on %s:%d\n%!" host (Serve.Server.port server);
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.2
  done;
  prerr_endline "olsq2-serve: shutting down";
  Serve.Server.stop server;
  0

let cmd =
  let doc = "serve OLSQ2 layout synthesis over HTTP (JSON requests, cached canonical results)" in
  let info = Cmd.info "olsq2-serve" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ Serve.Cli_options.term $ port_arg $ host_arg $ pool_arg $ handlers_arg
      $ cache_capacity_arg $ verbose_arg $ access_log_arg)

let () = exit (Cmd.eval' cmd)
