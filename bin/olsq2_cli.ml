(* olsq2: command-line layout synthesis.

   Subcommands:
     synth     synthesize a circuit onto a device (OLSQ2 / TB-OLSQ2 /
               SABRE / SATMap-style), validate, report, optionally emit
               the mapped OpenQASM
     generate  write a benchmark circuit as OpenQASM
     devices   list built-in coupling graphs *)

module Core = Olsq2_core
module Devices = Olsq2_device.Devices
module Coupling = Olsq2_device.Coupling
module Circuit = Olsq2_circuit.Circuit
module Qasm = Olsq2_circuit.Qasm
module Suite = Olsq2_benchgen.Suite
module Sabre = Olsq2_heuristic.Sabre
module Astar = Olsq2_heuristic.Astar_router
module Satmap = Olsq2_satmap.Satmap
module Obs = Olsq2_obs.Obs
module Cli_options = Olsq2_serve.Cli_options
open Cmdliner

(* ---- shared arguments ----

   The synthesis knobs (-j/--share/--simplify/--budget/--conflict-budget/
   --cube-depth/-c/--certify/--proof) come from Serve.Cli_options, the
   single definition olsq2-serve parses too. *)

let circuit_arg =
  let doc =
    "Circuit spec: qaoa:N[:SEED], qft:N, tof:K, barenco_tof:K, ising:N[:STEPS], toffoli, \
     queko:DEPTH:GATES[:SEED], quekno:DEPTH:GATES:SWAPS[:SEED], or file:PATH (OpenQASM 2)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let device_arg =
  let doc =
    "Target device: a built-in name (qx2, aspen-4, sycamore, eagle, osprey) or a generator \
     pattern (heavy-hex-127, heavy-hex-RxC, grid-RxC, torus-RxC, sycamore-RxC, line-N, ring-N); \
     `olsq2 devices` lists all of them."
  in
  Arg.(value & opt string "qx2" & info [ "d"; "device" ] ~docv:"DEVICE" ~doc)

let swap_duration_arg =
  let doc = "SWAP gate duration in time steps (default: 1 for QAOA, 3 otherwise)." in
  Arg.(value & opt (some int) None & info [ "swap-duration" ] ~docv:"STEPS" ~doc)

let objective_arg =
  let doc = "Objective: depth or swap." in
  Arg.(value & opt (enum [ ("depth", `Depth); ("swap", `Swap) ]) `Depth & info [ "o"; "objective" ] ~doc)

let method_arg =
  let doc =
    "Synthesis method: olsq2 (exact), tb (transition-based), sabre, astar, satmap, or \
     portfolio (parallel arms racing on separate cores)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("olsq2", `Olsq2); ("tb", `Tb); ("sabre", `Sabre); ("astar", `Astar);
             ("satmap", `Satmap); ("portfolio", `Portfolio);
           ])
        `Olsq2
    & info [ "m"; "method" ] ~doc)

let warm_start_arg =
  let doc = "Seed the SWAP descent with SABRE's count first (exact swap objective only)." in
  Arg.(value & flag & info [ "warm-start" ] ~doc)

let output_arg =
  let doc = "Write the mapped physical circuit as OpenQASM to this file." in
  Arg.(value & opt (some string) None & info [ "output" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record a trace of the run and write it to $(docv): JSON lines by default, or a Chrome \
     trace_event file (Perfetto / chrome://tracing loadable) when $(docv) ends in .json.  \
     $(b,--trace-out) is an alias."
  in
  Arg.(value & opt (some string) None & info [ "trace"; "trace-out" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Print a per-span timing and counter summary after the run on stderr (results stay on \
     stdout); use $(b,--metrics-out) to write it to a file instead."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_out_arg =
  let doc = "Write the per-span timing and counter summary to $(docv) instead of stderr." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc =
    "Solver introspection: print live $(i,bound=... conflicts=... learnt=...) heartbeat lines on \
     stderr during long solves, and after the run an aggregate solver-statistics block (conflicts, \
     propagations/sec, LBD and trail-depth percentiles) plus a per-bound-iteration table."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let prom_arg =
  let doc =
    "Write the run's metric summary (counters, span totals, histograms) to $(docv) in Prometheus \
     text exposition format, e.g. for a node_exporter textfile collector."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let flamegraph_arg =
  let doc =
    "Write a collapsed-stack span profile (self time per span stack, in microseconds) to \
     $(docv); render it with flamegraph.pl or inferno-flamegraph."
  in
  Arg.(value & opt (some string) None & info [ "flamegraph" ] ~docv:"FILE" ~doc)

(* ---- synth ---- *)

module Solver = Olsq2_sat.Solver

(* Aggregate + per-iteration solver statistics on stderr (results stay on
   stdout, so pipelines keep working under --stats). *)
let print_stats_block ~label agg (iters : Core.Optimizer.iter_stat list) =
  Format.eprintf "@[<v>%s solver stats:@,%a@]@." label Solver.pp_stats_record agg;
  if iters <> [] then begin
    Printf.eprintf "%s iterations:\n  %-16s %6s %-16s %9s %10s %13s\n" label "phase" "bound"
      "verdict" "seconds" "conflicts" "propagations";
    List.iter
      (fun (it : Core.Optimizer.iter_stat) ->
        let s = it.Core.Optimizer.iter_stats in
        Printf.eprintf "  %-16s %6d %-16s %9.3f %10d %13d\n" it.Core.Optimizer.iter_phase
          it.Core.Optimizer.iter_bound it.Core.Optimizer.iter_verdict
          it.Core.Optimizer.iter_seconds s.Solver.conflicts s.Solver.propagations)
      iters;
    flush stderr
  end

let run_synth circuit_spec device_name (common : Cli_options.common) swap_duration objective
    method_ warm output trace metrics metrics_out stats prom flamegraph =
  let certify = common.Cli_options.certify in
  let simplify = common.Cli_options.simplify in
  let obs =
    if trace <> None || metrics || metrics_out <> None || prom <> None || flamegraph <> None
    then (
      let t = Obs.create () in
      Obs.set_global t;
      t)
    else Obs.disabled
  in
  if stats then
    Core.Optimizer.set_progress_sink
      (Some
         (fun (p : Core.Optimizer.progress) ->
           Printf.eprintf "[%s] bound=%d conflicts=%d learnt=%d props=%d\n%!"
             p.Core.Optimizer.prog_phase p.Core.Optimizer.prog_bound
             p.Core.Optimizer.prog_conflicts p.Core.Optimizer.prog_learnts
             p.Core.Optimizer.prog_propagations));
  let device = Devices.by_name device_name in
  let circuit = Suite.parse_spec ~device circuit_spec in
  let swap_duration =
    match swap_duration with Some sd -> sd | None -> Suite.swap_duration_for circuit
  in
  let instance = Core.Instance.make ~swap_duration circuit device in
  Printf.printf "circuit: %s   device: %s   swap duration: %d\n" (Circuit.label circuit)
    device.Coupling.name swap_duration;
  Printf.printf "T_LB (longest dependency chain) = %d\n%!" (Core.Instance.depth_lower_bound instance);
  let budget_t = Cli_options.budget common in
  let finish ?certificate result =
    match result with
    | None ->
      Printf.printf "no solution found within the budget\n";
      1
    | Some r ->
      print_string (Core.Export.report instance r);
      let validation_ok =
        match Core.Validate.check instance r with
        | [] ->
          Printf.printf "validation: OK\n";
          true
        | vs ->
          Printf.printf "validation: %d violations\n" (List.length vs);
          List.iter (fun v -> Printf.printf "  %s\n" (Core.Validate.violation_to_string v)) vs;
          false
      in
      (match output with
      | None -> ()
      | Some path ->
        Qasm.write_file path (Core.Export.physical_circuit instance r);
        Printf.printf "mapped circuit written to %s\n" path);
      let certificate_ok =
        if not certify then true
        else
          match certificate with
          | Some c ->
            print_endline (Core.Certificate.to_string c);
            Core.Certificate.valid c
          | None ->
            Printf.printf
              "certification requested but no certificate was produced (optimality not proved, \
               or the objective is not certifiable)\n";
            false
      in
      if validation_ok && certificate_ok then 0 else 1
  in
  let code =
    match method_ with
    | (`Tb | `Sabre | `Astar | `Satmap) when certify ->
      Printf.printf
        "--certify requires an exact method with a refutable bound; use -m olsq2 or -m portfolio\n";
      1
    | `Olsq2 | `Tb ->
      let synth_objective =
        match (method_, objective) with
        | `Olsq2, `Depth -> Core.Synthesis.Depth
        | `Olsq2, `Swap ->
          let warm_start =
            if warm then Some (Sabre.synthesize instance).Core.Result_.swap_count else None
          in
          Core.Synthesis.Swaps { warm_start }
        | _, `Depth -> Core.Synthesis.Tb_blocks
        | _, `Swap -> Core.Synthesis.Tb_swaps
      in
      let options =
        Cli_options.options common |> Core.Synthesis.Options.with_device device_name
      in
      let r = Core.Synthesis.run ~options ~objective:synth_objective instance in
      (match (method_, r.Core.Synthesis.pareto) with
      | `Tb, (blocks, _) :: _ -> Printf.printf "blocks used: %d\n" blocks
      | _ -> ());
      if stats then
        print_stats_block ~label:"run" r.Core.Synthesis.solver_stats r.Core.Synthesis.iter_stats;
      finish ?certificate:r.Core.Synthesis.certificate r.Core.Synthesis.result
    | `Sabre -> finish (Some (Sabre.synthesize instance))
    | `Astar -> finish (Astar.synthesize instance)
    | `Satmap ->
      let o = Satmap.synthesize ?budget_seconds:common.Cli_options.budget_seconds instance in
      finish o.Satmap.result
    | `Portfolio ->
      let objective =
        match objective with `Depth -> Core.Portfolio.Depth | `Swap -> Core.Portfolio.Swaps
      in
      (* an explicit --simplify/--no-simplify overrides every arm,
         including the default preprocessed one *)
      let arms =
        match simplify with
        | None -> None
        | Some b ->
          Some
            (List.map
               (fun (arm : Core.Portfolio.arm) ->
                 {
                   arm with
                   Core.Portfolio.arm_config =
                     { arm.Core.Portfolio.arm_config with Core.Config.simplify = b };
                 })
               (Core.Portfolio.default_arms objective))
      in
      let report =
        Core.Portfolio.run ~budget:budget_t ?arms ~certify
          ?proof_file:common.Cli_options.proof_file
          ~share:(Option.value common.Cli_options.share ~default:false)
          objective instance
      in
      List.iter
        (fun (arm : Core.Portfolio.arm_outcome) ->
          Printf.printf "arm %-18s %6.1fs %s\n" arm.Core.Portfolio.arm.Core.Portfolio.arm_name
            arm.Core.Portfolio.seconds
            (match arm.Core.Portfolio.result with
            | Some r ->
              Printf.sprintf "depth=%d swaps=%d%s" r.Core.Result_.depth r.Core.Result_.swap_count
                (if arm.Core.Portfolio.optimal then " (optimal)" else "")
            | None -> "no result"))
        report.Core.Portfolio.arms;
      if stats then
        List.iter
          (fun (a : Core.Portfolio.arm_outcome) ->
            print_stats_block
              ~label:(Printf.sprintf "arm %s" a.Core.Portfolio.arm.Core.Portfolio.arm_name)
              a.Core.Portfolio.arm_stats [])
          report.Core.Portfolio.arms;
      (match report.Core.Portfolio.winner with
      | Some w ->
        Printf.printf "winner: %s\n" w.Core.Portfolio.arm.Core.Portfolio.arm_name;
        finish ?certificate:report.Core.Portfolio.certificate w.Core.Portfolio.result
      | None -> finish None)
  in
  if stats then Core.Optimizer.set_progress_sink None;
  (match trace with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    if Filename.check_suffix path ".json" then Obs.write_chrome obs oc
    else Obs.write_jsonl obs oc;
    close_out oc;
    Printf.printf "trace written to %s\n" path);
  if metrics || metrics_out <> None then begin
    let render fmt =
      Format.fprintf fmt "%a@?" Obs.pp_summary (Obs.summary obs);
      Format.fprintf fmt "simplify: %s@." (Olsq2_simplify.Simplify.totals_summary ())
    in
    if metrics then render Format.err_formatter;
    match metrics_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      render (Format.formatter_of_out_channel oc);
      close_out oc;
      Printf.printf "metrics written to %s\n" path
  end;
  (match prom with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs.write_prometheus obs oc;
    close_out oc;
    Printf.printf "prometheus metrics written to %s\n" path);
  (match flamegraph with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs.Profile.write_flamegraph obs oc;
    close_out oc;
    Printf.printf "flamegraph written to %s\n" path);
  code

let synth_cmd =
  let doc = "Synthesize a circuit layout for a quantum device." in
  Cmd.v
    (Cmd.info "synth" ~doc)
    Term.(
      const run_synth $ circuit_arg $ device_arg $ Cli_options.term $ swap_duration_arg
      $ objective_arg $ method_arg $ warm_start_arg $ output_arg $ trace_arg $ metrics_arg
      $ metrics_out_arg $ stats_arg $ prom_arg $ flamegraph_arg)

(* ---- generate ---- *)

let run_generate circuit_spec device_name output =
  let device = Devices.by_name device_name in
  let circuit = Suite.parse_spec ~device circuit_spec in
  let text = Qasm.print circuit in
  (match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "%s written to %s\n" (Circuit.label circuit) path);
  0

let generate_cmd =
  let doc = "Generate a benchmark circuit as OpenQASM 2." in
  Cmd.v (Cmd.info "generate" ~doc) Term.(const run_generate $ circuit_arg $ device_arg $ output_arg)

(* ---- devices ---- *)

let run_devices () =
  List.iter
    (fun name ->
      let d = Devices.by_name name in
      Printf.printf "%-10s %3d qubits  %3d edges  diameter %d\n" name d.Coupling.num_qubits
        (Coupling.num_edges d) (Coupling.diameter d))
    Devices.all_names;
  print_newline ();
  Printf.printf "generator patterns:\n";
  List.iter
    (fun (pattern, descr) -> Printf.printf "  %-14s %s\n" pattern descr)
    Devices.name_patterns;
  0

let devices_cmd =
  let doc = "List built-in coupling graphs." in
  Cmd.v (Cmd.info "devices" ~doc) Term.(const run_devices $ const ())

let () =
  let doc = "scalable optimal layout synthesis for NISQ quantum processors (OLSQ2)" in
  let info = Cmd.info "olsq2" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ synth_cmd; generate_cmd; devices_cmd ]))
